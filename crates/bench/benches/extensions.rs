//! Benchmarks for the future-work extensions: weighted preferences,
//! the geometric noise model, extended measures, clustering
//! post-processing, and the attack estimator.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use socialrec_bench::fixture;
use socialrec_community::{merge_small_clusters, ClusteringStrategy, Louvain, LouvainStrategy};
use socialrec_core::attack::{estimate_leakage, SybilAttack};
use socialrec_core::private::{ClusterFramework, NoiseModel};
use socialrec_core::weighted::{WeightedClusterFramework, WeightedInputs};
use socialrec_core::{cluster_by_similarity, RecommenderInputs};
use socialrec_dp::Epsilon;
use socialrec_graph::weighted::WeightedPreferenceGraphBuilder;
use socialrec_graph::{ItemId, UserId};
use socialrec_similarity::{Jaccard, Measure, ResourceAllocation, SimilarityMatrix};
use std::hint::black_box;

fn bench_extensions(c: &mut Criterion) {
    let ds = fixture(0.25);
    let sim = SimilarityMatrix::build(&ds.social, &Measure::CommonNeighbors);
    let inputs = RecommenderInputs { prefs: &ds.prefs, sim: &sim };
    let partition = LouvainStrategy { restarts: 3, seed: 0, refine: true }.cluster(&ds.social);
    let users: Vec<UserId> = (0..ds.social.num_users() as u32).map(UserId).collect();
    let eps = Epsilon::Finite(0.5);

    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);

    // Geometric vs Laplace noise in the framework.
    g.bench_function("framework_laplace", |b| {
        let fw = ClusterFramework::new(&partition, eps);
        b.iter(|| black_box(fw.noisy_cluster_averages(&inputs, 1)))
    });
    g.bench_function("framework_geometric", |b| {
        let fw = ClusterFramework::new(&partition, eps).with_noise(NoiseModel::Geometric);
        b.iter(|| black_box(fw.noisy_cluster_averages(&inputs, 1)))
    });

    // Weighted pipeline end-to-end.
    let ratings = {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut wb =
            WeightedPreferenceGraphBuilder::new(ds.prefs.num_users(), ds.prefs.num_items());
        for (u, i) in ds.prefs.edges() {
            wb.add_edge(u, i, rng.gen_range(0.2..=1.0)).expect("in range");
        }
        wb.build()
    };
    g.bench_function("weighted_framework_full", |b| {
        let winputs = WeightedInputs { prefs: &ratings, sim: &sim };
        let fw = WeightedClusterFramework::new(&partition, eps);
        b.iter(|| black_box(fw.recommend(&winputs, &users, 20, 1)))
    });

    // Extended similarity measures (matrix build).
    g.bench_function("similarity_jaccard", |b| {
        b.iter(|| black_box(SimilarityMatrix::build(&ds.social, &Jaccard)))
    });
    g.bench_function("similarity_resource_allocation", |b| {
        b.iter(|| black_box(SimilarityMatrix::build(&ds.social, &ResourceAllocation)))
    });

    // Clustering post-processing + similarity-weighted clustering.
    g.bench_function("merge_small_clusters", |b| {
        b.iter(|| black_box(merge_small_clusters(&ds.social, &partition, 10)))
    });
    g.bench_function("similarity_weighted_louvain", |b| {
        b.iter(|| black_box(cluster_by_similarity(&sim, Louvain::default(), 0.0)))
    });

    // Attack estimation (small trial count; scales linearly).
    g.bench_function("attack_leakage_50_trials", |b| {
        let attack = SybilAttack::mount(&ds.social, UserId(3));
        let prefs = attack.extend_preferences(&ds.prefs);
        let target = *ds.prefs.items_of(UserId(3)).first().unwrap_or(&ItemId(0));
        let prefs = if prefs.has_edge(UserId(3), target) {
            prefs
        } else {
            prefs.toggled_edge(UserId(3), target)
        };
        let asim = SimilarityMatrix::build(&attack.social, &Measure::CommonNeighbors);
        let apart = LouvainStrategy { restarts: 2, seed: 0, refine: true }.cluster(&attack.social);
        let fw = ClusterFramework::new(&apart, eps);
        b.iter(|| black_box(estimate_leakage(&fw, &attack, &asim, &prefs, target, 50)))
    });
    g.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
