//! Benchmarks for evaluation and DP primitives: NDCG, top-N selection,
//! Laplace sampling and the counter-based noise stream.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use socialrec_core::{per_user_ndcg, top_n_items};
use socialrec_dp::{sample_laplace, CounterLaplace};
use socialrec_graph::ItemId;
use std::hint::black_box;

fn bench_eval(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let utilities: Vec<f64> = (0..17_632).map(|_| rng.gen::<f64>() * 100.0).collect();

    let mut g = c.benchmark_group("eval");
    g.bench_function("topn_50_of_17632", |b| b.iter(|| black_box(top_n_items(&utilities, 50))));

    let list: Vec<ItemId> = top_n_items(&utilities, 50).into_iter().map(|(i, _)| i).collect();
    g.bench_function("ndcg_at_50", |b| b.iter(|| black_box(per_user_ndcg(&utilities, &list, 50))));
    g.finish();

    let mut g = c.benchmark_group("dp_primitives");
    g.bench_function("laplace_sample", |b| b.iter(|| black_box(sample_laplace(&mut rng, 1.0))));
    let stream = CounterLaplace::new(7, 1.0);
    g.bench_function("counter_laplace", |b| {
        let mut k = 0u32;
        b.iter(|| {
            k = k.wrapping_add(1);
            black_box(stream.noise(k, k.wrapping_mul(31)))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
