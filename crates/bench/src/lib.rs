//! Shared helpers for the criterion benchmark suite.
//!
//! The actual benchmarks live in `benches/`; this library only hosts
//! fixtures reused across them.

#![warn(missing_docs)]

use socialrec_datasets::{lastfm_like_scaled, Dataset};

/// The standard small fixture: a Last.fm-like dataset at the given
/// scale, seeded deterministically so benchmark runs are comparable.
pub fn fixture(scale: f64) -> Dataset {
    lastfm_like_scaled(scale, 7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_stable() {
        let a = fixture(0.05);
        let b = fixture(0.05);
        assert_eq!(a.social, b.social);
        assert_eq!(a.prefs, b.prefs);
    }
}
