//! The two-sided geometric mechanism — the discrete analogue of the
//! Laplace mechanism (Ghosh, Roughgarden & Sundararajan 2009).
//!
//! For integer-valued queries with sensitivity `Δ`, adding two-sided
//! geometric noise `Pr[k] = (1-α)/(1+α) · α^|k|` with `α = e^(-ε/Δ)`
//! yields ε-differential privacy, and the mechanism is universally
//! utility-optimal for counts. The private framework can release the
//! raw per-(cluster, item) *counts* this way (sensitivity 1) and divide
//! by `|c|` afterwards — an alternative instantiation whose noise ends
//! up the same `1/(|c|·ε)` scale as the Laplace-on-averages route.

use crate::epsilon::Epsilon;
use rand::Rng;

/// Draw two-sided geometric noise with parameter `alpha ∈ (0, 1)`.
///
/// Sampled as the difference of two iid geometric variables, which has
/// exactly the two-sided geometric distribution.
#[inline]
pub fn sample_two_sided_geometric<R: Rng + ?Sized>(rng: &mut R, alpha: f64) -> i64 {
    debug_assert!((0.0..1.0).contains(&alpha), "alpha must be in (0,1)");
    if alpha == 0.0 {
        return 0;
    }
    // Geometric(1-alpha) over {0,1,2,...} via inversion.
    let ln_alpha = alpha.ln();
    let geo = |rng: &mut R| -> i64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        (u.ln() / ln_alpha).floor() as i64
    };
    geo(rng) - geo(rng)
}

/// The geometric mechanism bound to a privacy level and an integer
/// sensitivity.
#[derive(Clone, Copy, Debug)]
pub struct GeometricMechanism {
    epsilon: Epsilon,
    sensitivity: u64,
}

impl GeometricMechanism {
    /// Mechanism adding two-sided geometric noise with
    /// `α = e^(-ε/Δ)`.
    pub fn new(epsilon: Epsilon, sensitivity: u64) -> Self {
        GeometricMechanism { epsilon, sensitivity }
    }

    /// The noise parameter `α`, or `None` when no noise is needed.
    pub fn alpha(&self) -> Option<f64> {
        match self.epsilon {
            Epsilon::Infinite => None,
            Epsilon::Finite(e) => {
                if self.sensitivity == 0 {
                    None
                } else {
                    Some((-e / self.sensitivity as f64).exp())
                }
            }
        }
    }

    /// Return `count` perturbed with fresh geometric noise.
    #[inline]
    pub fn privatize<R: Rng + ?Sized>(&self, rng: &mut R, count: i64) -> i64 {
        match self.alpha() {
            Some(a) => count + sample_two_sided_geometric(rng, a),
            None => count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn noise_statistics() {
        let mut rng = SmallRng::seed_from_u64(3);
        let alpha = 0.8f64; // eps ~ 0.223 at sensitivity 1
        let n = 100_000;
        let samples: Vec<i64> =
            (0..n).map(|_| sample_two_sided_geometric(&mut rng, alpha)).collect();
        let mean: f64 = samples.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        // E = 0; Var = 2α/(1-α)².
        let var: f64 = samples.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        let expected_var = 2.0 * alpha / (1.0 - alpha) / (1.0 - alpha);
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!(
            (var - expected_var).abs() < 0.06 * expected_var + 0.2,
            "var {var} vs {expected_var}"
        );
    }

    #[test]
    fn distribution_shape_is_geometric() {
        // Pr[|k|=1]/Pr[k=0] must be ~2α·(…)/… — simpler: the ratio of
        // consecutive magnitudes is α.
        let mut rng = SmallRng::seed_from_u64(9);
        let alpha = 0.5f64;
        let n = 200_000;
        let mut counts = [0u32; 4];
        for _ in 0..n {
            let k = sample_two_sided_geometric(&mut rng, alpha).unsigned_abs() as usize;
            if k < 4 {
                counts[k] += 1;
            }
        }
        // For the two-sided geometric, Pr[|K|=k+1]/Pr[|K|=k] = α for
        // k >= 1, and 2α at k = 0 (both signs fold together).
        let r10 = counts[1] as f64 / counts[0] as f64;
        let r21 = counts[2] as f64 / counts[1] as f64;
        assert!((r10 - 2.0 * alpha).abs() < 0.05, "r10 {r10}");
        assert!((r21 - alpha).abs() < 0.05, "r21 {r21}");
    }

    #[test]
    fn epsilon_infinite_is_identity() {
        let m = GeometricMechanism::new(Epsilon::Infinite, 1);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(m.privatize(&mut rng, 42), 42);
        assert_eq!(m.alpha(), None);
    }

    #[test]
    fn alpha_decreases_with_epsilon() {
        let strong = GeometricMechanism::new(Epsilon::Finite(0.1), 1).alpha().unwrap();
        let weak = GeometricMechanism::new(Epsilon::Finite(2.0), 1).alpha().unwrap();
        assert!(strong > weak, "stronger privacy needs larger alpha");
        assert!((strong - (-0.1f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn dp_ratio_bound_empirical() {
        // Pr[output = o | count] vs Pr[output = o | count+1] bounded by
        // e^eps for a range of outputs.
        let eps = 1.0;
        let m = GeometricMechanism::new(Epsilon::Finite(eps), 1);
        let trials = 60_000u64;
        let hist = |base: i64| -> std::collections::HashMap<i64, f64> {
            let mut rng = SmallRng::seed_from_u64(77);
            let mut h = std::collections::HashMap::new();
            for _ in 0..trials {
                *h.entry(m.privatize(&mut rng, base)).or_insert(0.0) += 1.0 / trials as f64;
            }
            h
        };
        let h0 = hist(5);
        let h1 = hist(6);
        for o in 3..=8 {
            let p0 = h0.get(&o).copied().unwrap_or(0.0);
            let p1 = h1.get(&o).copied().unwrap_or(0.0);
            if p0 > 0.01 && p1 > 0.01 {
                let ratio = p0.max(p1) / p0.min(p1);
                assert!(ratio <= eps.exp() * 1.2, "o={o}: ratio {ratio}");
            }
        }
    }
}
