//! Counter-based deterministic Laplace noise.
//!
//! The Noise-on-Edges baseline (paper §5.1.1) conceptually perturbs the
//! weight of *every* `(user, item)` cell — a dense `|U| × |I|` matrix.
//! Materialising it is wasteful; instead we derive the noise for cell
//! `(a, b)` by hashing `(seed, a, b)` with splitmix64 and pushing the
//! resulting uniform through the Laplace inverse CDF. The same cell
//! always yields the same noise, so all utility queries observe one
//! consistent noisy preference graph — exactly what the adversary model
//! requires — without `O(|U|·|I|)` memory.

use crate::laplace::laplace_inverse_cdf;

/// splitmix64 finalizer — a fast, well-distributed 64-bit mixer.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic Laplace noise stream keyed by a seed and a 2-D index.
#[derive(Clone, Copy, Debug)]
pub struct CounterLaplace {
    seed: u64,
    scale: f64,
}

impl CounterLaplace {
    /// Stream with the given seed and Laplace scale `b > 0`.
    pub fn new(seed: u64, scale: f64) -> Self {
        assert!(scale > 0.0, "laplace scale must be positive");
        CounterLaplace { seed, scale }
    }

    /// The configured scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The Laplace sample for cell `(a, b)`.
    #[inline]
    pub fn noise(&self, a: u32, b: u32) -> f64 {
        let key = self.seed ^ ((a as u64) << 32 | b as u64);
        let bits = splitmix64(splitmix64(key));
        // 53 random mantissa bits -> uniform in [0, 1), then center.
        let unit = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let u = unit - 0.5;
        laplace_inverse_cdf(u, self.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_cell() {
        let s = CounterLaplace::new(42, 1.0);
        assert_eq!(s.noise(3, 7), s.noise(3, 7));
        assert_ne!(s.noise(3, 7), s.noise(7, 3), "cells are ordered pairs");
        let s2 = CounterLaplace::new(43, 1.0);
        assert_ne!(s.noise(3, 7), s2.noise(3, 7), "seed must matter");
    }

    #[test]
    fn statistics_match_laplace() {
        let s = CounterLaplace::new(7, 2.0);
        let n = 100_000u32;
        let samples: Vec<f64> = (0..n).map(|k| s.noise(k, k.wrapping_mul(31))).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let mean_abs: f64 = samples.iter().map(|x| x.abs()).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((mean_abs - 2.0).abs() < 0.05, "mean abs {mean_abs} vs scale 2");
    }

    #[test]
    fn adjacent_cells_uncorrelated() {
        let s = CounterLaplace::new(1, 1.0);
        // Crude serial-correlation check over a row.
        let xs: Vec<f64> = (0..10_000).map(|i| s.noise(5, i)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let num: f64 = xs.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum::<f64>();
        let den: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>();
        let rho = num / den;
        assert!(rho.abs() < 0.05, "serial correlation {rho} too high");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = CounterLaplace::new(0, 0.0);
    }
}
