//! The privacy parameter ε.

use std::fmt;
use std::str::FromStr;

/// The differential-privacy parameter ε.
///
/// Smaller ε means stronger privacy and more noise; the paper sweeps
/// `{∞, 1.0, 0.6, 0.1, 0.05, 0.01}`. `Infinite` disables noise entirely
/// and is used to measure approximation error alone.
///
/// # Examples
///
/// ```
/// use socialrec_dp::Epsilon;
///
/// let eps: Epsilon = "0.1".parse().unwrap();
/// assert_eq!(eps.laplace_scale(1.0), Some(10.0));
/// assert_eq!("inf".parse::<Epsilon>().unwrap(), Epsilon::Infinite);
/// assert!(Epsilon::new(-1.0).is_none());
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Epsilon {
    /// Finite ε > 0.
    Finite(f64),
    /// ε = ∞: no privacy, no noise.
    Infinite,
}

impl Epsilon {
    /// Construct an ε from a raw value; returns `None` unless `eps > 0`
    /// (and is not NaN). Positive infinity maps to
    /// [`Epsilon::Infinite`], everything else to [`Epsilon::Finite`].
    ///
    /// ```
    /// use socialrec_dp::Epsilon;
    ///
    /// assert_eq!(Epsilon::new(f64::INFINITY), Some(Epsilon::Infinite));
    /// assert_eq!(Epsilon::new(0.5), Some(Epsilon::Finite(0.5)));
    /// assert!(Epsilon::new(0.0).is_none());
    /// assert!(Epsilon::new(f64::NEG_INFINITY).is_none());
    /// assert!(Epsilon::new(f64::NAN).is_none());
    /// ```
    pub fn new(eps: f64) -> Option<Epsilon> {
        if eps.is_finite() && eps > 0.0 {
            Some(Epsilon::Finite(eps))
        } else if eps.is_infinite() && eps > 0.0 {
            Some(Epsilon::Infinite)
        } else {
            None
        }
    }

    /// The ε value as `f64` (`f64::INFINITY` for `Infinite`).
    pub fn value(self) -> f64 {
        match self {
            Epsilon::Finite(e) => e,
            Epsilon::Infinite => f64::INFINITY,
        }
    }

    /// Whether this setting adds no noise.
    pub fn is_infinite(self) -> bool {
        matches!(self, Epsilon::Infinite)
    }

    /// Laplace scale `Δ/ε` for a given sensitivity; `None` when no noise
    /// is needed (ε = ∞ or Δ = 0).
    pub fn laplace_scale(self, sensitivity: f64) -> Option<f64> {
        assert!(sensitivity >= 0.0, "sensitivity must be non-negative");
        match self {
            Epsilon::Infinite => None,
            Epsilon::Finite(e) => {
                if sensitivity == 0.0 {
                    None
                } else {
                    Some(sensitivity / e)
                }
            }
        }
    }

    /// Split this budget evenly into `parts` sequential pieces
    /// (Theorem 2). `∞` splits into `∞`.
    pub fn split(self, parts: usize) -> Epsilon {
        assert!(parts >= 1, "cannot split into zero parts");
        match self {
            Epsilon::Infinite => Epsilon::Infinite,
            Epsilon::Finite(e) => Epsilon::Finite(e / parts as f64),
        }
    }
}

impl fmt::Display for Epsilon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Epsilon::Finite(e) => write!(f, "{e}"),
            Epsilon::Infinite => write!(f, "inf"),
        }
    }
}

impl FromStr for Epsilon {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim();
        if t.eq_ignore_ascii_case("inf") || t.eq_ignore_ascii_case("infinity") || t == "∞" {
            return Ok(Epsilon::Infinite);
        }
        let v: f64 = t.parse().map_err(|_| format!("bad epsilon: {s:?}"))?;
        Epsilon::new(v).ok_or_else(|| format!("epsilon must be > 0, got {v}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert_eq!(Epsilon::new(0.1), Some(Epsilon::Finite(0.1)));
        assert_eq!(Epsilon::new(f64::INFINITY), Some(Epsilon::Infinite));
        assert_eq!(Epsilon::new(0.0), None);
        assert_eq!(Epsilon::new(-1.0), None);
        assert_eq!(Epsilon::new(f64::NAN), None);
        assert_eq!(Epsilon::new(f64::NEG_INFINITY), None);
    }

    #[test]
    fn laplace_scale_rules() {
        let e = Epsilon::Finite(0.5);
        assert_eq!(e.laplace_scale(2.0), Some(4.0));
        assert_eq!(e.laplace_scale(0.0), None);
        assert_eq!(Epsilon::Infinite.laplace_scale(10.0), None);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sensitivity_panics() {
        let _ = Epsilon::Finite(1.0).laplace_scale(-1.0);
    }

    #[test]
    fn split_budget() {
        assert_eq!(Epsilon::Finite(1.0).split(2), Epsilon::Finite(0.5));
        assert_eq!(Epsilon::Infinite.split(4), Epsilon::Infinite);
    }

    #[test]
    fn parse_and_display() {
        assert_eq!("0.1".parse::<Epsilon>().unwrap(), Epsilon::Finite(0.1));
        assert_eq!("inf".parse::<Epsilon>().unwrap(), Epsilon::Infinite);
        assert_eq!("∞".parse::<Epsilon>().unwrap(), Epsilon::Infinite);
        assert!("x".parse::<Epsilon>().is_err());
        assert!("0".parse::<Epsilon>().is_err());
        assert_eq!(Epsilon::Finite(0.6).to_string(), "0.6");
        assert_eq!(Epsilon::Infinite.to_string(), "inf");
    }
}
