//! The Laplace mechanism (paper Theorem 1).
//!
//! An algorithm with global sensitivity `Δ` becomes ε-differentially
//! private by adding independent `Lap(Δ/ε)` noise to each output term.

use crate::epsilon::Epsilon;
use rand::Rng;

/// Draw one sample from the Laplace distribution with mean 0 and the
/// given `scale` (`b` in `f(x) = exp(-|x|/b) / 2b`), via inverse CDF.
#[inline]
pub fn sample_laplace<R: Rng + ?Sized>(rng: &mut R, scale: f64) -> f64 {
    debug_assert!(scale > 0.0, "laplace scale must be positive");
    // u uniform in (-1/2, 1/2]; x = -b·sign(u)·ln(1 - 2|u|).
    let u: f64 = rng.gen::<f64>() - 0.5;
    laplace_inverse_cdf(u, scale)
}

/// Inverse CDF of the centered Laplace distribution, parameterised by
/// `u ∈ (-1/2, 1/2)`. Shared by [`sample_laplace`] and the counter-based
/// stream.
#[inline]
pub(crate) fn laplace_inverse_cdf(u: f64, scale: f64) -> f64 {
    let a = (1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE);
    -scale * u.signum() * a.ln()
}

/// Expected absolute error `E|Lap(b)| = b` of a Laplace perturbation with
/// sensitivity `Δ` at privacy level ε (the paper quotes the std
/// `√2·Δ/ε`; the mean absolute error is `Δ/ε`).
pub fn laplace_expected_abs_error(epsilon: Epsilon, sensitivity: f64) -> f64 {
    epsilon.laplace_scale(sensitivity).unwrap_or(0.0)
}

/// The Laplace mechanism bound to a privacy level and a sensitivity.
#[derive(Clone, Copy, Debug)]
pub struct LaplaceMechanism {
    epsilon: Epsilon,
    sensitivity: f64,
}

impl LaplaceMechanism {
    /// Mechanism adding `Lap(sensitivity/ε)` noise.
    ///
    /// Panics if `sensitivity < 0`.
    pub fn new(epsilon: Epsilon, sensitivity: f64) -> Self {
        assert!(sensitivity >= 0.0, "sensitivity must be non-negative");
        LaplaceMechanism { epsilon, sensitivity }
    }

    /// The configured privacy level.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// The configured sensitivity.
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// The noise scale, if any noise is added at all.
    pub fn scale(&self) -> Option<f64> {
        self.epsilon.laplace_scale(self.sensitivity)
    }

    /// Return `value` perturbed with fresh Laplace noise.
    #[inline]
    pub fn privatize<R: Rng + ?Sized>(&self, rng: &mut R, value: f64) -> f64 {
        match self.scale() {
            Some(b) => value + sample_laplace(rng, b),
            None => value,
        }
    }

    /// Perturb every element of `values` in place with independent noise.
    pub fn privatize_slice<R: Rng + ?Sized>(&self, rng: &mut R, values: &mut [f64]) {
        if let Some(b) = self.scale() {
            for v in values {
                *v += sample_laplace(rng, b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sample_statistics_match_distribution() {
        let mut rng = SmallRng::seed_from_u64(12345);
        let scale = 2.0;
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_laplace(&mut rng, scale)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let mean_abs: f64 = samples.iter().map(|x| x.abs()).sum::<f64>() / n as f64;
        // E[X]=0, Var=2b², E|X|=b.
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 2.0 * scale * scale).abs() < 0.3, "var {var} vs {}", 2.0 * scale * scale);
        assert!((mean_abs - scale).abs() < 0.05, "mean abs {mean_abs} vs {scale}");
    }

    #[test]
    fn samples_take_both_signs() {
        let mut rng = SmallRng::seed_from_u64(1);
        let (mut pos, mut neg) = (0, 0);
        for _ in 0..1000 {
            if sample_laplace(&mut rng, 1.0) >= 0.0 {
                pos += 1;
            } else {
                neg += 1;
            }
        }
        assert!(pos > 400 && neg > 400, "sign balance off: {pos}/{neg}");
    }

    #[test]
    fn infinite_epsilon_is_identity() {
        let m = LaplaceMechanism::new(Epsilon::Infinite, 10.0);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(m.privatize(&mut rng, 3.25), 3.25);
        let mut v = vec![1.0, 2.0];
        m.privatize_slice(&mut rng, &mut v);
        assert_eq!(v, vec![1.0, 2.0]);
    }

    #[test]
    fn zero_sensitivity_is_identity() {
        let m = LaplaceMechanism::new(Epsilon::Finite(0.1), 0.0);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(m.privatize(&mut rng, 5.0), 5.0);
        assert_eq!(m.scale(), None);
    }

    #[test]
    fn scale_is_sensitivity_over_epsilon() {
        let m = LaplaceMechanism::new(Epsilon::Finite(0.5), 3.0);
        assert_eq!(m.scale(), Some(6.0));
        assert_eq!(laplace_expected_abs_error(Epsilon::Finite(0.5), 3.0), 6.0);
        assert_eq!(laplace_expected_abs_error(Epsilon::Infinite, 3.0), 0.0);
    }

    #[test]
    fn privatize_actually_perturbs() {
        let m = LaplaceMechanism::new(Epsilon::Finite(1.0), 1.0);
        let mut rng = SmallRng::seed_from_u64(99);
        let noisy = m.privatize(&mut rng, 0.0);
        assert_ne!(noisy, 0.0);
    }

    #[test]
    fn smaller_epsilon_means_larger_noise() {
        // Compare empirical mean-abs noise at two privacy levels.
        let strong = LaplaceMechanism::new(Epsilon::Finite(0.01), 1.0);
        let weak = LaplaceMechanism::new(Epsilon::Finite(1.0), 1.0);
        let mut rng = SmallRng::seed_from_u64(5);
        let avg = |m: &LaplaceMechanism, rng: &mut SmallRng| {
            (0..2000).map(|_| m.privatize(rng, 0.0).abs()).sum::<f64>() / 2000.0
        };
        let s = avg(&strong, &mut rng);
        let w = avg(&weak, &mut rng);
        assert!(s > 10.0 * w, "strong-privacy noise {s} not >> weak {w}");
    }
}
