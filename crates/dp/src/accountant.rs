//! Privacy-budget bookkeeping for sequential and parallel composition
//! (paper Theorems 2 and 3).
//!
//! The framework's privacy proof (Theorem 4) rests on *parallel*
//! composition twice over: the per-(cluster, item) noisy averages touch
//! disjoint preference-edge sets, so the whole pipeline costs a single ε.
//! The accountant makes that argument executable and testable: code that
//! releases noisy quantities records them here, and tests assert the
//! total spent budget equals what the theorems predict.

use crate::epsilon::Epsilon;
use std::fmt;

/// A refused release: recording the requested ε would push the
/// accountant past the budget. Nothing was recorded.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BudgetExceeded {
    /// The ε the refused release asked for.
    pub requested: f64,
    /// Total ε already consumed when the request was made.
    pub spent: f64,
    /// The budget the spend would have exceeded.
    pub budget: f64,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "privacy budget exceeded: requested ε={} with ε={} of {} already spent",
            self.requested, self.spent, self.budget
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// A ledger of differentially private releases.
#[derive(Clone, Debug, Default)]
pub struct PrivacyAccountant {
    sequential_total: f64,
    parallel_max: f64,
    releases: usize,
}

impl PrivacyAccountant {
    /// Fresh accountant with zero spent budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a release of `eps` on data *overlapping* previous releases
    /// (sequential composition: budgets add).
    pub fn spend_sequential(&mut self, eps: Epsilon) {
        if let Epsilon::Finite(e) = eps {
            self.sequential_total += e;
        } else {
            self.sequential_total = f64::INFINITY;
        }
        self.releases += 1;
    }

    /// Record a release of `eps` on data *disjoint* from previous
    /// parallel releases (parallel composition: budgets max).
    pub fn spend_parallel(&mut self, eps: Epsilon) {
        self.parallel_max = self.parallel_max.max(eps.value());
        self.releases += 1;
    }

    /// Record a sequential release of `eps` **only if** the post-spend
    /// total stays within `budget`; otherwise refuse and record nothing.
    ///
    /// This is the enforcement point for streaming re-releases: code
    /// that produces noisy output must obtain the accountant's approval
    /// *first*, so a refusal happens before any privacy is consumed.
    /// The same `1e-12` slack as [`within`](Self::within) absorbs
    /// floating-point dust when a schedule sums to the budget exactly.
    pub fn try_spend_sequential(
        &mut self,
        eps: Epsilon,
        budget: Epsilon,
    ) -> Result<(), BudgetExceeded> {
        if let Epsilon::Finite(b) = budget {
            let spent = self.total_epsilon();
            if spent + eps.value() > b + 1e-12 {
                return Err(BudgetExceeded { requested: eps.value(), spent, budget: b });
            }
        }
        self.spend_sequential(eps);
        Ok(())
    }

    /// Total ε consumed: `sequential_total + parallel_max`.
    pub fn total_epsilon(&self) -> f64 {
        self.sequential_total + self.parallel_max
    }

    /// The sequentially composed part of the spend (budgets added).
    pub fn sequential_total(&self) -> f64 {
        self.sequential_total
    }

    /// The parallel-composed part of the spend (max over disjoint
    /// releases). This is the term the observability ledger reports per
    /// noisy-averages release: ε regardless of cluster count.
    pub fn parallel_max(&self) -> f64 {
        self.parallel_max
    }

    /// Number of releases recorded.
    pub fn releases(&self) -> usize {
        self.releases
    }

    /// Whether total consumption stays within `budget`.
    pub fn within(&self, budget: Epsilon) -> bool {
        match budget {
            Epsilon::Infinite => true,
            Epsilon::Finite(b) => self.total_epsilon() <= b + 1e-12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_adds() {
        let mut a = PrivacyAccountant::new();
        a.spend_sequential(Epsilon::Finite(0.3));
        a.spend_sequential(Epsilon::Finite(0.2));
        assert!((a.total_epsilon() - 0.5).abs() < 1e-12);
        assert_eq!(a.releases(), 2);
        assert!(a.within(Epsilon::Finite(0.5)));
        assert!(!a.within(Epsilon::Finite(0.4)));
    }

    #[test]
    fn parallel_takes_max() {
        let mut a = PrivacyAccountant::new();
        for _ in 0..1000 {
            a.spend_parallel(Epsilon::Finite(0.1));
        }
        assert!((a.total_epsilon() - 0.1).abs() < 1e-12);
        assert_eq!(a.releases(), 1000);
        assert!(a.within(Epsilon::Finite(0.1)));
    }

    #[test]
    fn mixed_composition() {
        // The framework: parallel over clusters & items at ε, nothing else.
        let mut a = PrivacyAccountant::new();
        for _ in 0..50 {
            a.spend_parallel(Epsilon::Finite(0.1));
        }
        // A hypothetical second pass over the same data would add.
        a.spend_sequential(Epsilon::Finite(0.1));
        assert!((a.total_epsilon() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn component_accessors_expose_both_composition_terms() {
        let mut a = PrivacyAccountant::new();
        for _ in 0..8 {
            a.spend_parallel(Epsilon::Finite(0.25));
        }
        a.spend_sequential(Epsilon::Finite(0.5));
        assert!((a.parallel_max() - 0.25).abs() < 1e-12);
        assert!((a.sequential_total() - 0.5).abs() < 1e-12);
        assert!((a.total_epsilon() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn try_spend_refuses_before_recording() {
        let mut a = PrivacyAccountant::new();
        let budget = Epsilon::Finite(1.0);
        a.try_spend_sequential(Epsilon::Finite(0.6), budget).unwrap();
        // Over-budget: refused, state untouched.
        let err = a.try_spend_sequential(Epsilon::Finite(0.5), budget).unwrap_err();
        assert_eq!(err, BudgetExceeded { requested: 0.5, spent: 0.6, budget: 1.0 });
        assert!(err.to_string().contains("budget exceeded"), "{err}");
        assert!((a.total_epsilon() - 0.6).abs() < 1e-12);
        assert_eq!(a.releases(), 1);
        // A smaller spend that fits still goes through — exactly to the
        // edge (1e-12 slack).
        a.try_spend_sequential(Epsilon::Finite(0.4), budget).unwrap();
        assert!((a.total_epsilon() - 1.0).abs() < 1e-12);
        assert!(a.try_spend_sequential(Epsilon::Finite(1e-6), budget).is_err());
        // Infinite budget never refuses.
        a.try_spend_sequential(Epsilon::Finite(100.0), Epsilon::Infinite).unwrap();
        // An infinite request against a finite budget is refused.
        let mut b = PrivacyAccountant::new();
        assert!(b.try_spend_sequential(Epsilon::Infinite, Epsilon::Finite(10.0)).is_err());
        assert_eq!(b.releases(), 0);
    }

    #[test]
    fn infinite_epsilon_blows_budget() {
        let mut a = PrivacyAccountant::new();
        a.spend_sequential(Epsilon::Infinite);
        assert!(a.total_epsilon().is_infinite());
        assert!(!a.within(Epsilon::Finite(100.0)));
        assert!(a.within(Epsilon::Infinite));
    }
}
