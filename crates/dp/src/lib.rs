//! Differential-privacy machinery for the `socialrec` workspace.
//!
//! Implements the pieces of §3 of Jorgensen & Yu (EDBT 2014):
//!
//! * [`Epsilon`] — the privacy parameter, including the explicit
//!   `ε = ∞` (no noise) setting the paper uses to isolate approximation
//!   error in Figures 1–3.
//! * [`laplace`] — the Laplace mechanism (Theorem 1): noise with scale
//!   `Δ/ε` calibrated to global sensitivity (Definition 7).
//! * [`counter`] — a *counter-based* deterministic Laplace stream:
//!   `noise(k) = F⁻¹(splitmix64(seed, k))`. Needed by the Noise-on-Edges
//!   baseline, whose conceptual noisy-edge matrix is dense `|U|×|I|` and
//!   must stay consistent across all users without being materialised.
//! * [`accountant`] — bookkeeping for sequential (Theorem 2) and
//!   parallel (Theorem 3) composition.

#![warn(missing_docs)]

pub mod accountant;
pub mod counter;
pub mod epsilon;
pub mod geometric;
pub mod laplace;

pub use accountant::{BudgetExceeded, PrivacyAccountant};
pub use counter::CounterLaplace;
pub use epsilon::Epsilon;
pub use geometric::{sample_two_sided_geometric, GeometricMechanism};
pub use laplace::{laplace_expected_abs_error, sample_laplace, LaplaceMechanism};
