//! Property-based tests for the DP primitives.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use socialrec_dp::{laplace_expected_abs_error, sample_laplace, CounterLaplace, Epsilon};

proptest! {
    #[test]
    fn epsilon_roundtrips_through_strings(e in 0.001f64..100.0) {
        let eps = Epsilon::new(e).unwrap();
        let parsed: Epsilon = eps.to_string().parse().unwrap();
        prop_assert!((parsed.value() - e).abs() < 1e-9);
    }

    #[test]
    fn laplace_scale_monotone_in_epsilon(
        e1 in 0.01f64..10.0,
        factor in 1.01f64..100.0,
        sens in 0.01f64..50.0,
    ) {
        // Larger epsilon (weaker privacy) must never increase the scale.
        let strong = Epsilon::Finite(e1).laplace_scale(sens).unwrap();
        let weak = Epsilon::Finite(e1 * factor).laplace_scale(sens).unwrap();
        prop_assert!(weak < strong);
        // Scale is linear in sensitivity.
        let double = Epsilon::Finite(e1).laplace_scale(sens * 2.0).unwrap();
        prop_assert!((double - 2.0 * strong).abs() < 1e-9);
    }

    #[test]
    fn expected_error_matches_scale(e in 0.01f64..10.0, sens in 0.0f64..10.0) {
        let err = laplace_expected_abs_error(Epsilon::Finite(e), sens);
        prop_assert!((err - sens / e).abs() < 1e-12);
    }

    #[test]
    fn split_budget_conserves_total(e in 0.01f64..10.0, parts in 1usize..20) {
        let whole = Epsilon::Finite(e);
        let piece = whole.split(parts);
        prop_assert!((piece.value() * parts as f64 - e).abs() < 1e-9);
    }

    #[test]
    fn laplace_samples_are_finite(seed in 0u64..1000, scale in 1e-6f64..1e6) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..100 {
            let x = sample_laplace(&mut rng, scale);
            prop_assert!(x.is_finite(), "non-finite sample at scale {scale}");
        }
    }

    #[test]
    fn counter_noise_deterministic_and_finite(
        seed in 0u64..1000,
        a in 0u32..1_000_000,
        b in 0u32..1_000_000,
        scale in 1e-6f64..1e6,
    ) {
        let s = CounterLaplace::new(seed, scale);
        let x = s.noise(a, b);
        prop_assert!(x.is_finite());
        prop_assert_eq!(x, s.noise(a, b));
    }

    #[test]
    fn counter_noise_scales_linearly(seed in 0u64..100, a in 0u32..1000, b in 0u32..1000) {
        // The inverse-CDF construction makes noise exactly linear in the
        // scale parameter for a fixed cell.
        let s1 = CounterLaplace::new(seed, 1.0);
        let s2 = CounterLaplace::new(seed, 2.0);
        prop_assert!((s2.noise(a, b) - 2.0 * s1.noise(a, b)).abs() < 1e-9);
    }
}
