//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use socialrec_graph::io::{
    read_preference_graph, read_social_graph, write_preference_graph, write_social_graph,
};
use socialrec_graph::preference::preference_graph_from_edges;
use socialrec_graph::social::social_graph_from_edges;
use socialrec_graph::traversal::{connected_components, BfsScratch};
use socialrec_graph::{ItemId, UserId};
use std::io::Cursor;

/// Strategy: a user count and a set of candidate social edges within it.
fn social_inputs() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0u32..n as u32, 0u32..n as u32), 0..80)
            .prop_map(|pairs| pairs.into_iter().filter(|(a, b)| a != b).collect::<Vec<_>>());
        (Just(n), edges)
    })
}

fn preference_inputs() -> impl Strategy<Value = (usize, usize, Vec<(u32, u32)>)> {
    (1usize..30, 1usize..30).prop_flat_map(|(nu, ni)| {
        let edges = proptest::collection::vec((0u32..nu as u32, 0u32..ni as u32), 0..80);
        (Just(nu), Just(ni), edges)
    })
}

proptest! {
    #[test]
    fn social_graph_csr_invariants((n, edges) in social_inputs()) {
        let g = social_graph_from_edges(n, &edges).unwrap();
        prop_assert_eq!(g.num_users(), n);
        // Handshake: sum of degrees equals twice the edge count.
        let degree_sum: usize = g.users().map(|u| g.degree(u)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
        for u in g.users() {
            let ns = g.neighbors(u);
            // Strictly sorted, no self, symmetric.
            for w in ns.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            for &v in ns {
                prop_assert_ne!(v, u);
                prop_assert!(g.has_edge(v, u));
            }
        }
        // Edge count equals the number of distinct canonical pairs.
        let mut canon: Vec<(u32, u32)> =
            edges.iter().map(|&(a, b)| if a < b { (a, b) } else { (b, a) }).collect();
        canon.sort_unstable();
        canon.dedup();
        prop_assert_eq!(g.num_edges(), canon.len());
    }

    #[test]
    fn social_graph_io_roundtrip((n, edges) in social_inputs()) {
        let g = social_graph_from_edges(n, &edges).unwrap();
        let mut buf = Vec::new();
        write_social_graph(&g, &mut buf).unwrap();
        let g2 = read_social_graph(Cursor::new(buf), "mem").unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn preference_graph_transpose_consistency((nu, ni, edges) in preference_inputs()) {
        let g = preference_graph_from_edges(nu, ni, &edges).unwrap();
        let user_sum: usize = g.users().map(|u| g.user_degree(u)).sum();
        let item_sum: usize = g.items().map(|i| g.item_degree(i)).sum();
        prop_assert_eq!(user_sum, g.num_edges());
        prop_assert_eq!(item_sum, g.num_edges());
        for (u, i) in g.edges() {
            prop_assert!(g.users_of(i).contains(&u));
            prop_assert_eq!(g.weight(u, i), 1.0);
        }
    }

    #[test]
    fn preference_graph_io_roundtrip((nu, ni, edges) in preference_inputs()) {
        let g = preference_graph_from_edges(nu, ni, &edges).unwrap();
        let mut buf = Vec::new();
        write_preference_graph(&g, &mut buf).unwrap();
        let g2 = read_preference_graph(Cursor::new(buf), "mem").unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn toggle_edge_involutive((nu, ni, edges) in preference_inputs(), u in 0u32..30, i in 0u32..30) {
        let g = preference_graph_from_edges(nu, ni, &edges).unwrap();
        let u = UserId(u % nu as u32);
        let i = ItemId(i % ni as u32);
        let toggled = g.toggled_edge(u, i);
        // Differ by exactly one edge, and toggling twice restores.
        let diff = (g.num_edges() as i64 - toggled.num_edges() as i64).abs();
        prop_assert_eq!(diff, 1);
        prop_assert_eq!(toggled.toggled_edge(u, i), g);
    }

    #[test]
    fn components_partition_users((n, edges) in social_inputs()) {
        let g = social_graph_from_edges(n, &edges).unwrap();
        let cc = connected_components(&g);
        prop_assert_eq!(cc.component.len(), n);
        prop_assert_eq!(cc.sizes.iter().sum::<usize>(), n);
        // Every edge joins nodes of the same component.
        for (u, v) in g.edges() {
            prop_assert_eq!(cc.component[u.index()], cc.component[v.index()]);
        }
    }

    #[test]
    fn bfs_distances_are_metric_within_bound((n, edges) in social_inputs()) {
        use socialrec_graph::traversal::shortest_distance_within;
        let g = social_graph_from_edges(n, &edges).unwrap();
        let mut s = BfsScratch::new(n);
        let mut s2 = BfsScratch::new(n);
        for u in g.users().take(5) {
            for v in g.users().take(5) {
                let duv = shortest_distance_within(&g, u, v, 6, &mut s);
                let dvu = shortest_distance_within(&g, v, u, 6, &mut s2);
                prop_assert_eq!(duv, dvu, "distance must be symmetric");
                if u == v {
                    prop_assert_eq!(duv, Some(0));
                }
                if let Some(d) = duv {
                    if d == 1 {
                        prop_assert!(g.has_edge(u, v));
                    }
                }
            }
        }
    }
}
