//! Error type shared by graph construction and I/O.

use std::fmt;
use std::io;

/// Errors produced while building or loading graphs.
#[derive(Debug)]
pub enum GraphError {
    /// A node id referenced by an edge is out of the declared range.
    NodeOutOfRange {
        /// What kind of node ("user" or "item").
        kind: &'static str,
        /// The offending id.
        id: u32,
        /// The number of nodes declared.
        num_nodes: usize,
    },
    /// A social edge connects a node to itself; the model forbids loops.
    SelfLoop {
        /// The node with the loop.
        id: u32,
    },
    /// Underlying I/O failure while reading or writing a graph file.
    Io(io::Error),
    /// A line of an input file could not be parsed.
    Parse {
        /// Path or description of the source.
        source_name: String,
        /// 1-based line number.
        line: usize,
        /// Explanation of what failed.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { kind, id, num_nodes } => {
                write!(f, "{kind} id {id} out of range (num nodes = {num_nodes})")
            }
            GraphError::SelfLoop { id } => write!(f, "self loop on node {id}"),
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Parse { source_name, line, message } => {
                write!(f, "parse error in {source_name} at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::NodeOutOfRange { kind: "user", id: 9, num_nodes: 5 };
        assert!(e.to_string().contains("user id 9"));
        let e = GraphError::SelfLoop { id: 3 };
        assert!(e.to_string().contains("self loop"));
        let e = GraphError::Parse { source_name: "x.tsv".into(), line: 2, message: "bad".into() };
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn io_error_wraps() {
        let e: GraphError = io::Error::new(io::ErrorKind::NotFound, "nope").into();
        assert!(e.to_string().contains("nope"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
