//! Compact, type-safe node identifiers.
//!
//! Users and items are indexed densely from zero with `u32`s. Newtypes
//! prevent the classic bug of indexing an item array with a user id.

use std::fmt;

/// Identifier of a user node in the social / preference graphs.
///
/// Dense: valid ids are `0..num_users`. `repr(transparent)` guarantees
/// the layout of a bare `u32`, so zero-copy readers may reinterpret a
/// `&[u32]` loaded from an on-disk artifact as a `&[UserId]`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct UserId(pub u32);

/// Identifier of an item node in the preference graph.
///
/// Dense: valid ids are `0..num_items`. `repr(transparent)` for the
/// same zero-copy reason as [`UserId`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct ItemId(pub u32);

impl UserId {
    /// The id as a `usize`, for indexing.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ItemId {
    /// The id as a `usize`, for indexing.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Reinterpret a `&[UserId]` as its underlying `&[u32]`, zero-copy.
///
/// Sound by the `repr(transparent)` guarantee above; this is the
/// inverse direction of the artifact readers' cast, used to feed
/// adjacency lists to the `socialrec-simd` integer kernels.
#[inline(always)]
pub fn user_ids_as_u32(ids: &[UserId]) -> &[u32] {
    // SAFETY: UserId is repr(transparent) over u32 — identical layout
    // and alignment, same length.
    unsafe { std::slice::from_raw_parts(ids.as_ptr() as *const u32, ids.len()) }
}

impl From<u32> for UserId {
    #[inline]
    fn from(v: u32) -> Self {
        UserId(v)
    }
}

impl From<u32> for ItemId {
    #[inline]
    fn from(v: u32) -> Self {
        ItemId(v)
    }
}

impl fmt::Debug for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_id_roundtrip() {
        let u: UserId = 42u32.into();
        assert_eq!(u.index(), 42);
        assert_eq!(format!("{u}"), "42");
        assert_eq!(format!("{u:?}"), "u42");
    }

    #[test]
    fn item_id_roundtrip() {
        let i: ItemId = 7u32.into();
        assert_eq!(i.index(), 7);
        assert_eq!(format!("{i}"), "7");
        assert_eq!(format!("{i:?}"), "i7");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(UserId(1) < UserId(2));
        assert!(ItemId(0) < ItemId(10));
    }
}
