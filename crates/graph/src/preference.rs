//! The bipartite preference graph `G_p = (U, I, E_p)` (paper Definition 2).
//!
//! Unweighted, per the paper's model: an edge `(u, i)` means user `u`
//! positively prefers item `i` and has weight `w(u, i) = 1`; absent edges
//! have weight 0. Weighted inputs (e.g. ratings) are thresholded and
//! binarized during preprocessing (see `socialrec-datasets`), exactly as
//! §6.1 of the paper does.
//!
//! Both orientations are stored in CSR form, because the recommenders
//! iterate user→items (utility accumulation) while the private framework
//! iterates item→users (per-item cluster averages).

use crate::error::GraphError;
use crate::ids::{ItemId, UserId};

/// Immutable bipartite user→item preference graph.
///
/// Invariants: rows sorted, no duplicates, the two orientations are
/// transposes of each other.
#[derive(Clone, Debug, PartialEq)]
pub struct PreferenceGraph {
    // user -> items
    user_offsets: Vec<u32>,
    user_items: Vec<ItemId>,
    // item -> users (transpose)
    item_offsets: Vec<u32>,
    item_users: Vec<UserId>,
}

impl PreferenceGraph {
    /// Number of user nodes `|U|`.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.user_offsets.len() - 1
    }

    /// Number of item nodes `|I|`.
    #[inline]
    pub fn num_items(&self) -> usize {
        self.item_offsets.len() - 1
    }

    /// Number of preference edges `|E_p|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.user_items.len()
    }

    /// Items preferred by user `u`, sorted by id.
    #[inline]
    pub fn items_of(&self, u: UserId) -> &[ItemId] {
        let i = u.index();
        &self.user_items[self.user_offsets[i] as usize..self.user_offsets[i + 1] as usize]
    }

    /// Users who prefer item `i`, sorted by id.
    #[inline]
    pub fn users_of(&self, i: ItemId) -> &[UserId] {
        let k = i.index();
        &self.item_users[self.item_offsets[k] as usize..self.item_offsets[k + 1] as usize]
    }

    /// Out-degree of user `u` (how many items they prefer).
    #[inline]
    pub fn user_degree(&self, u: UserId) -> usize {
        let i = u.index();
        (self.user_offsets[i + 1] - self.user_offsets[i]) as usize
    }

    /// In-degree of item `i` (how many users prefer it).
    #[inline]
    pub fn item_degree(&self, i: ItemId) -> usize {
        let k = i.index();
        (self.item_offsets[k + 1] - self.item_offsets[k]) as usize
    }

    /// The edge weight `w(u, i)`: 1.0 if the edge exists, else 0.0.
    #[inline]
    pub fn weight(&self, u: UserId, i: ItemId) -> f64 {
        if self.has_edge(u, i) {
            1.0
        } else {
            0.0
        }
    }

    /// Whether the preference edge `(u, i)` exists. `O(log deg(u))`.
    #[inline]
    pub fn has_edge(&self, u: UserId, i: ItemId) -> bool {
        self.items_of(u).binary_search(&i).is_ok()
    }

    /// Iterator over all items `0..num_items`.
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        (0..self.num_items() as u32).map(ItemId)
    }

    /// Iterator over all users `0..num_users`.
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        (0..self.num_users() as u32).map(UserId)
    }

    /// Iterator over every preference edge `(u, i)`.
    pub fn edges(&self) -> impl Iterator<Item = (UserId, ItemId)> + '_ {
        self.users().flat_map(move |u| self.items_of(u).iter().copied().map(move |i| (u, i)))
    }

    /// Sparsity of the bipartite adjacency matrix:
    /// `1 - |E_p| / (|U|·|I|)` (as reported in the paper's Table 1).
    pub fn sparsity(&self) -> f64 {
        let cells = self.num_users() as f64 * self.num_items() as f64;
        if cells == 0.0 {
            1.0
        } else {
            1.0 - self.num_edges() as f64 / cells
        }
    }

    /// A copy of this graph with the single edge `(u, i)` added (if
    /// absent) or removed (if present).
    ///
    /// Used by the differential-privacy tests to construct *neighboring*
    /// preference graphs in the sense of Definition 6.
    pub fn toggled_edge(&self, u: UserId, i: ItemId) -> PreferenceGraph {
        let mut b = PreferenceGraphBuilder::new(self.num_users(), self.num_items());
        let mut found = false;
        for (a, x) in self.edges() {
            if a == u && x == i {
                found = true;
                continue; // remove
            }
            b.add_edge(a, x).expect("existing edge must be valid");
        }
        if !found {
            b.add_edge(u, i).expect("toggled edge must be in range");
        }
        b.build()
    }

    /// Construct directly from validated CSR arrays (both orientations).
    ///
    /// Internal use (builder, delta application); callers must uphold
    /// the struct invariants.
    pub(crate) fn from_csr(
        user_offsets: Vec<u32>,
        user_items: Vec<ItemId>,
        item_offsets: Vec<u32>,
        item_users: Vec<UserId>,
    ) -> Self {
        debug_assert!(!user_offsets.is_empty());
        debug_assert!(!item_offsets.is_empty());
        debug_assert_eq!(*user_offsets.last().unwrap() as usize, user_items.len());
        debug_assert_eq!(*item_offsets.last().unwrap() as usize, item_users.len());
        debug_assert_eq!(user_items.len(), item_users.len());
        PreferenceGraph { user_offsets, user_items, item_offsets, item_users }
    }
}

/// Incremental builder for [`PreferenceGraph`].
///
/// Duplicate edges collapse at build time.
#[derive(Clone, Debug, Default)]
pub struct PreferenceGraphBuilder {
    num_users: usize,
    num_items: usize,
    edges: Vec<(UserId, ItemId)>,
}

impl PreferenceGraphBuilder {
    /// Create a builder over `num_users` users and `num_items` items.
    pub fn new(num_users: usize, num_items: usize) -> Self {
        PreferenceGraphBuilder { num_users, num_items, edges: Vec::new() }
    }

    /// Reserve space for `n` further edges.
    pub fn reserve(&mut self, n: usize) {
        self.edges.reserve(n);
    }

    /// Number of (possibly duplicate) edges added so far.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges have been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Add the preference edge `(u, i)`.
    pub fn add_edge(&mut self, u: UserId, i: ItemId) -> Result<(), GraphError> {
        if u.index() >= self.num_users {
            return Err(GraphError::NodeOutOfRange {
                kind: "user",
                id: u.0,
                num_nodes: self.num_users,
            });
        }
        if i.index() >= self.num_items {
            return Err(GraphError::NodeOutOfRange {
                kind: "item",
                id: i.0,
                num_nodes: self.num_items,
            });
        }
        self.edges.push((u, i));
        Ok(())
    }

    /// Finalize into an immutable [`PreferenceGraph`].
    pub fn build(mut self) -> PreferenceGraph {
        self.edges.sort_unstable();
        self.edges.dedup();

        let nu = self.num_users;
        let ni = self.num_items;

        let mut user_offsets = vec![0u32; nu + 1];
        let mut item_offsets = vec![0u32; ni + 1];
        for &(u, i) in &self.edges {
            user_offsets[u.index() + 1] += 1;
            item_offsets[i.index() + 1] += 1;
        }
        for k in 0..nu {
            user_offsets[k + 1] += user_offsets[k];
        }
        for k in 0..ni {
            item_offsets[k + 1] += item_offsets[k];
        }

        let m = self.edges.len();
        let mut user_items = vec![ItemId(0); m];
        let mut item_users = vec![UserId(0); m];
        let mut ucur = vec![0u32; nu];
        let mut icur = vec![0u32; ni];
        // Edges are sorted by (user, item): user rows fill in item order,
        // and since users ascend, item rows fill in user order — both
        // orientations come out sorted without a per-row sort.
        for &(u, i) in &self.edges {
            let iu = u.index();
            let ii = i.index();
            user_items[(user_offsets[iu] + ucur[iu]) as usize] = i;
            ucur[iu] += 1;
            item_users[(item_offsets[ii] + icur[ii]) as usize] = u;
            icur[ii] += 1;
        }

        PreferenceGraph { user_offsets, user_items, item_offsets, item_users }
    }
}

/// Build a preference graph from raw `(u, i)` pairs. Convenience for
/// tests and examples.
pub fn preference_graph_from_edges(
    num_users: usize,
    num_items: usize,
    edges: &[(u32, u32)],
) -> Result<PreferenceGraph, GraphError> {
    let mut b = PreferenceGraphBuilder::new(num_users, num_items);
    b.reserve(edges.len());
    for &(u, i) in edges {
        b.add_edge(UserId(u), ItemId(i))?;
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PreferenceGraph {
        // u0: i0, i1; u1: i1; u2: (none); 3 items, i2 unloved.
        preference_graph_from_edges(3, 3, &[(0, 0), (0, 1), (1, 1)]).unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = sample();
        assert_eq!(g.num_users(), 3);
        assert_eq!(g.num_items(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.user_degree(UserId(0)), 2);
        assert_eq!(g.user_degree(UserId(2)), 0);
        assert_eq!(g.item_degree(ItemId(1)), 2);
        assert_eq!(g.item_degree(ItemId(2)), 0);
    }

    #[test]
    fn orientations_are_transposes() {
        let g = sample();
        for (u, i) in g.edges() {
            assert!(g.users_of(i).contains(&u));
        }
        let mut count = 0;
        for i in g.items() {
            for &u in g.users_of(i) {
                assert!(g.has_edge(u, i));
                count += 1;
            }
        }
        assert_eq!(count, g.num_edges());
    }

    #[test]
    fn weights_binary() {
        let g = sample();
        assert_eq!(g.weight(UserId(0), ItemId(0)), 1.0);
        assert_eq!(g.weight(UserId(2), ItemId(0)), 0.0);
    }

    #[test]
    fn rows_sorted() {
        let g =
            preference_graph_from_edges(2, 5, &[(0, 4), (0, 1), (0, 3), (1, 2), (1, 0)]).unwrap();
        assert_eq!(g.items_of(UserId(0)), &[ItemId(1), ItemId(3), ItemId(4)]);
        assert_eq!(g.items_of(UserId(1)), &[ItemId(0), ItemId(2)]);
        for i in g.items() {
            let us = g.users_of(i);
            for w in us.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn duplicates_collapse() {
        let g = preference_graph_from_edges(1, 1, &[(0, 0), (0, 0)]).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn sparsity_matches_definition() {
        let g = sample();
        assert!((g.sparsity() - (1.0 - 3.0 / 9.0)).abs() < 1e-12);
        let empty = preference_graph_from_edges(0, 0, &[]).unwrap();
        assert_eq!(empty.sparsity(), 1.0);
    }

    #[test]
    fn toggled_edge_removes_and_adds() {
        let g = sample();
        let without = g.toggled_edge(UserId(0), ItemId(0));
        assert_eq!(without.num_edges(), 2);
        assert!(!without.has_edge(UserId(0), ItemId(0)));
        let with = g.toggled_edge(UserId(2), ItemId(2));
        assert_eq!(with.num_edges(), 4);
        assert!(with.has_edge(UserId(2), ItemId(2)));
        // Toggling twice returns to the original.
        assert_eq!(g.toggled_edge(UserId(0), ItemId(0)).toggled_edge(UserId(0), ItemId(0)), g);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut b = PreferenceGraphBuilder::new(1, 1);
        assert!(b.add_edge(UserId(1), ItemId(0)).is_err());
        assert!(b.add_edge(UserId(0), ItemId(1)).is_err());
    }
}
