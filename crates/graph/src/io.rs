//! Graph file I/O.
//!
//! * Simple TSV edge lists for both graph kinds (our native on-disk
//!   format, used by examples and experiment snapshots).
//! * Raw-record readers for the two public datasets the paper uses:
//!   HetRec-2011 Last.fm (`user_friends.dat`, `user_artists.dat`) and
//!   Flixster-style (`links.txt`, `ratings.txt`). These return raw
//!   external-id records; dense renumbering and the paper's §6.1
//!   preprocessing live in `socialrec-datasets`.

use crate::error::GraphError;
use crate::ids::{ItemId, UserId};
use crate::preference::{PreferenceGraph, PreferenceGraphBuilder};
use crate::social::{SocialGraph, SocialGraphBuilder};
use rustc_hash::FxHashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// A raw social edge with external (file) ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RawSocialEdge {
    /// First endpoint (external id).
    pub a: u64,
    /// Second endpoint (external id).
    pub b: u64,
}

/// A raw weighted user→item record with external ids.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RawRating {
    /// User (external id).
    pub user: u64,
    /// Item (external id).
    pub item: u64,
    /// Raw weight (listen count, star rating, ...).
    pub weight: f64,
}

/// Maps arbitrary external `u64` ids to dense internal indices.
#[derive(Clone, Debug, Default)]
pub struct IdMapper {
    map: FxHashMap<u64, u32>,
    reverse: Vec<u64>,
}

impl IdMapper {
    /// Create an empty mapper.
    pub fn new() -> Self {
        Self::default()
    }

    /// Dense id for `external`, allocating the next index if unseen.
    pub fn get_or_insert(&mut self, external: u64) -> u32 {
        match self.map.entry(external) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let id = self.reverse.len() as u32;
                e.insert(id);
                self.reverse.push(external);
                id
            }
        }
    }

    /// Dense id for `external` if it has been seen.
    pub fn get(&self, external: u64) -> Option<u32> {
        self.map.get(&external).copied()
    }

    /// External id for a dense index.
    pub fn external(&self, dense: u32) -> Option<u64> {
        self.reverse.get(dense as usize).copied()
    }

    /// Number of distinct ids seen.
    pub fn len(&self) -> usize {
        self.reverse.len()
    }

    /// Whether no ids have been seen.
    pub fn is_empty(&self) -> bool {
        self.reverse.is_empty()
    }
}

fn parse_err(source_name: &str, line: usize, message: impl Into<String>) -> GraphError {
    GraphError::Parse { source_name: source_name.to_string(), line, message: message.into() }
}

/// Parse whitespace/tab-separated `u64` fields from a reader, skipping an
/// optional non-numeric header line and blank/comment (`#`, `%`) lines.
fn parse_records<R: Read, const N: usize>(
    reader: R,
    source_name: &str,
) -> Result<Vec<[f64; N]>, GraphError> {
    let reader = BufReader::new(reader);
    let mut out = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        if fields.len() < N {
            // Tolerate a single header line of column names.
            if idx == 0 && fields.iter().any(|f| f.parse::<f64>().is_err()) {
                continue;
            }
            return Err(parse_err(
                source_name,
                idx + 1,
                format!("expected {N} fields, found {}", fields.len()),
            ));
        }
        let mut rec = [0.0f64; N];
        let mut ok = true;
        for (k, f) in fields.iter().take(N).enumerate() {
            match f.parse::<f64>() {
                Ok(v) => rec[k] = v,
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            // Tolerate a header anywhere in the first line only.
            if idx == 0 {
                continue;
            }
            return Err(parse_err(
                source_name,
                idx + 1,
                format!("non-numeric field in {trimmed:?}"),
            ));
        }
        out.push(rec);
    }
    Ok(out)
}

/// Read a social edge list (`a<tab>b` per line, optional header) from any
/// reader.
pub fn read_social_edges<R: Read>(
    reader: R,
    source_name: &str,
) -> Result<Vec<RawSocialEdge>, GraphError> {
    Ok(parse_records::<R, 2>(reader, source_name)?
        .into_iter()
        .map(|[a, b]| RawSocialEdge { a: a as u64, b: b as u64 })
        .collect())
}

/// Read weighted ratings (`user<tab>item<tab>weight`, optional header).
pub fn read_ratings<R: Read>(reader: R, source_name: &str) -> Result<Vec<RawRating>, GraphError> {
    Ok(parse_records::<R, 3>(reader, source_name)?
        .into_iter()
        .map(|[u, i, w]| RawRating { user: u as u64, item: i as u64, weight: w })
        .collect())
}

/// Read a HetRec-2011 Last.fm style friends file (`userID\tfriendID`).
pub fn read_hetrec_friends(path: &Path) -> Result<Vec<RawSocialEdge>, GraphError> {
    let f = std::fs::File::open(path)?;
    read_social_edges(f, &path.display().to_string())
}

/// Read a HetRec-2011 Last.fm style listens file
/// (`userID\tartistID\tweight`).
pub fn read_hetrec_listens(path: &Path) -> Result<Vec<RawRating>, GraphError> {
    let f = std::fs::File::open(path)?;
    read_ratings(f, &path.display().to_string())
}

/// Write a social graph as a TSV edge list (one `u\tv` line per edge,
/// `u < v`), preceded by a `# users=N` header.
pub fn write_social_graph<W: Write>(g: &SocialGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# users={}", g.num_users())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Read a social graph previously written by [`write_social_graph`].
pub fn read_social_graph<R: Read>(reader: R, source_name: &str) -> Result<SocialGraph, GraphError> {
    let reader = BufReader::new(reader);
    let mut num_users: Option<usize> = None;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('#') {
            if let Some(v) = rest.trim().strip_prefix("users=") {
                num_users = Some(
                    v.trim()
                        .parse()
                        .map_err(|_| parse_err(source_name, idx + 1, "bad users= header"))?,
                );
            }
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let a: u32 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(source_name, idx + 1, "missing first endpoint"))?;
        let b: u32 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(source_name, idx + 1, "missing second endpoint"))?;
        edges.push((a, b));
    }
    let n = num_users
        .unwrap_or_else(|| edges.iter().map(|&(a, b)| a.max(b) as usize + 1).max().unwrap_or(0));
    let mut builder = SocialGraphBuilder::new(n);
    for (a, b) in edges {
        builder.add_edge(UserId(a), UserId(b))?;
    }
    Ok(builder.build())
}

/// Write a preference graph as TSV (`u\ti` lines with a
/// `# users=N items=M` header).
pub fn write_preference_graph<W: Write>(g: &PreferenceGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# users={} items={}", g.num_users(), g.num_items())?;
    for (u, i) in g.edges() {
        writeln!(w, "{u}\t{i}")?;
    }
    w.flush()?;
    Ok(())
}

/// Read a preference graph previously written by
/// [`write_preference_graph`].
pub fn read_preference_graph<R: Read>(
    reader: R,
    source_name: &str,
) -> Result<PreferenceGraph, GraphError> {
    let reader = BufReader::new(reader);
    let mut dims: Option<(usize, usize)> = None;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('#') {
            let mut users = None;
            let mut items = None;
            for tok in rest.split_whitespace() {
                if let Some(v) = tok.strip_prefix("users=") {
                    users = v.parse::<usize>().ok();
                } else if let Some(v) = tok.strip_prefix("items=") {
                    items = v.parse::<usize>().ok();
                }
            }
            if let (Some(u), Some(i)) = (users, items) {
                dims = Some((u, i));
            }
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let u: u32 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(source_name, idx + 1, "missing user"))?;
        let i: u32 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(source_name, idx + 1, "missing item"))?;
        edges.push((u, i));
    }
    let (nu, ni) = dims.unwrap_or_else(|| {
        (
            edges.iter().map(|&(u, _)| u as usize + 1).max().unwrap_or(0),
            edges.iter().map(|&(_, i)| i as usize + 1).max().unwrap_or(0),
        )
    });
    let mut builder = PreferenceGraphBuilder::new(nu, ni);
    for (u, i) in edges {
        builder.add_edge(UserId(u), ItemId(i))?;
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preference::preference_graph_from_edges;
    use crate::social::social_graph_from_edges;
    use std::io::Cursor;

    #[test]
    fn social_roundtrip() {
        let g = social_graph_from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let mut buf = Vec::new();
        write_social_graph(&g, &mut buf).unwrap();
        let g2 = read_social_graph(Cursor::new(buf), "mem").unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn preference_roundtrip() {
        let g = preference_graph_from_edges(3, 4, &[(0, 0), (0, 3), (2, 1)]).unwrap();
        let mut buf = Vec::new();
        write_preference_graph(&g, &mut buf).unwrap();
        let g2 = read_preference_graph(Cursor::new(buf), "mem").unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn roundtrip_preserves_isolated_tail_nodes() {
        // users=5 but max edge endpoint is 2: header must win.
        let g = social_graph_from_edges(5, &[(0, 2)]).unwrap();
        let mut buf = Vec::new();
        write_social_graph(&g, &mut buf).unwrap();
        let g2 = read_social_graph(Cursor::new(buf), "mem").unwrap();
        assert_eq!(g2.num_users(), 5);
    }

    #[test]
    fn hetrec_style_parsing_with_header() {
        let data = "userID\tfriendID\n2\t275\n2\t428\n275\t2\n";
        let edges = read_social_edges(Cursor::new(data), "friends.dat").unwrap();
        assert_eq!(edges.len(), 3);
        assert_eq!(edges[0], RawSocialEdge { a: 2, b: 275 });
    }

    #[test]
    fn ratings_parsing_with_header_and_comments() {
        let data = "userID\tartistID\tweight\n# comment\n2\t51\t13883\n2\t52\t11690\n";
        let ratings = read_ratings(Cursor::new(data), "listens.dat").unwrap();
        assert_eq!(ratings.len(), 2);
        assert_eq!(ratings[0], RawRating { user: 2, item: 51, weight: 13883.0 });
    }

    #[test]
    fn bad_line_is_an_error() {
        let data = "1\t2\nnot_a_number\t3\n";
        let err = read_social_edges(Cursor::new(data), "x").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn id_mapper_dense_and_stable() {
        let mut m = IdMapper::new();
        assert_eq!(m.get_or_insert(100), 0);
        assert_eq!(m.get_or_insert(7), 1);
        assert_eq!(m.get_or_insert(100), 0);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(7), Some(1));
        assert_eq!(m.get(8), None);
        assert_eq!(m.external(0), Some(100));
        assert_eq!(m.external(2), None);
    }
}
