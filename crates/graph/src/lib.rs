//! Graph substrate for the `socialrec` workspace.
//!
//! Implements the two input structures of Jorgensen & Yu (EDBT 2014):
//!
//! * [`SocialGraph`] — the undirected user–user graph `G_s = (U, E_s)`
//!   (Definition 1). Social edges are considered *public*.
//! * [`PreferenceGraph`] — the bipartite, unweighted user→item graph
//!   `G_p = (U, I, E_p)` (Definition 2). Preference edges are *private*
//!   and are what the differentially private mechanisms protect.
//!
//! Both are stored in CSR (compressed sparse row) form: a flat offsets
//! array plus a flat, per-row-sorted neighbor array. This gives cache
//! friendly iteration, `O(log d)` edge membership tests, and compact
//! memory (`u32` ids) — the layout every other crate in the workspace
//! builds on.
//!
//! The crate also provides:
//!
//! * [`generate`] — synthetic generators (planted-community graphs with
//!   heavy-tailed degrees, Erdős–Rényi, Barabási–Albert, Watts–Strogatz)
//!   used to stand in for the paper's crawled datasets,
//! * [`io`] — edge-list readers/writers plus HetRec-Last.fm and
//!   Flixster-format loaders,
//! * [`traversal`] — BFS utilities and connected components,
//! * [`stats`] — the summary statistics of the paper's Table 1.

#![warn(missing_docs)]

pub mod delta;
pub mod error;
pub mod generate;
pub mod ids;
pub mod io;
pub mod preference;
pub mod social;
pub mod stats;
pub mod traversal;
pub mod weighted;

pub use delta::{GraphDelta, PreferenceDeltaReport, SocialDeltaReport};
pub use error::GraphError;
pub use ids::{user_ids_as_u32, ItemId, UserId};
pub use preference::{PreferenceGraph, PreferenceGraphBuilder};
pub use social::{SocialGraph, SocialGraphBuilder};
pub use stats::{average_clustering_coefficient, DatasetStats};
pub use weighted::{WeightedPreferenceGraph, WeightedPreferenceGraphBuilder};
