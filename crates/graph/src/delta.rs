//! Edge deltas: streaming updates to the social and preference graphs.
//!
//! The paper's §7 names dynamic graphs as its primary future-work item.
//! A [`GraphDelta`] is one batch of edge arrivals/departures — social
//! (public) and preference (private) — applied to the immutable CSR
//! graphs by **row patching**: only rows whose adjacency actually
//! changes are re-merged; every untouched row is copied wholesale. The
//! result is exactly the graph a from-scratch builder would produce
//! (CSR layout included), so everything downstream that is keyed on
//! graph equality (similarity rows, partitions, release fingerprints)
//! can treat delta application and full rebuilds interchangeably.
//!
//! Semantics, fixed and documented here once:
//!
//! * adding an edge that already exists is a no-op;
//! * removing an edge that does not exist is a no-op;
//! * the same edge both removed and added in one delta ends up
//!   **present** (removals apply first, then additions);
//! * the reports list only edges whose membership actually *flipped* —
//!   no-ops never appear, so dirty-row tracking sees real change only.

use crate::error::GraphError;
use crate::ids::{ItemId, UserId};
use crate::preference::PreferenceGraph;
use crate::social::SocialGraph;

/// One batch of edge updates against a social + preference snapshot.
///
/// Build with the `add_*`/`remove_*` methods (order within the batch is
/// irrelevant; see the module docs for the add/remove conflict rule),
/// then apply with [`apply_social`](GraphDelta::apply_social) and
/// [`apply_preferences`](GraphDelta::apply_preferences).
#[derive(Clone, Debug, Default)]
pub struct GraphDelta {
    social_add: Vec<(UserId, UserId)>,
    social_remove: Vec<(UserId, UserId)>,
    pref_add: Vec<(UserId, ItemId)>,
    pref_remove: Vec<(UserId, ItemId)>,
}

/// What a social delta actually changed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SocialDeltaReport {
    /// Edges whose membership flipped, canonical `(u, v)` with `u < v`,
    /// sorted ascending.
    pub changed: Vec<(UserId, UserId)>,
    /// Endpoints of the flipped edges, sorted ascending, deduplicated.
    pub touched: Vec<UserId>,
}

/// What a preference delta actually changed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PreferenceDeltaReport {
    /// Edges whose membership flipped, sorted ascending by `(u, i)`.
    pub changed: Vec<(UserId, ItemId)>,
    /// Users with at least one flipped edge, sorted, deduplicated.
    pub touched_users: Vec<UserId>,
    /// Items with at least one flipped edge, sorted, deduplicated.
    pub touched_items: Vec<ItemId>,
}

/// Final membership a modification requests for one edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mod {
    Insert,
    Delete,
}

impl GraphDelta {
    /// An empty delta.
    pub fn new() -> GraphDelta {
        GraphDelta::default()
    }

    /// Queue a social edge arrival. Self loops are rejected.
    pub fn add_social(&mut self, u: UserId, v: UserId) -> Result<(), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop { id: u.0 });
        }
        self.social_add.push(if u < v { (u, v) } else { (v, u) });
        Ok(())
    }

    /// Queue a social edge departure. Self loops are rejected.
    pub fn remove_social(&mut self, u: UserId, v: UserId) -> Result<(), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop { id: u.0 });
        }
        self.social_remove.push(if u < v { (u, v) } else { (v, u) });
        Ok(())
    }

    /// Queue a preference edge arrival.
    pub fn add_preference(&mut self, u: UserId, i: ItemId) {
        self.pref_add.push((u, i));
    }

    /// Queue a preference edge departure.
    pub fn remove_preference(&mut self, u: UserId, i: ItemId) {
        self.pref_remove.push((u, i));
    }

    /// Number of queued social modifications (before dedup/no-op
    /// elimination).
    pub fn num_social(&self) -> usize {
        self.social_add.len() + self.social_remove.len()
    }

    /// Number of queued preference modifications.
    pub fn num_preferences(&self) -> usize {
        self.pref_add.len() + self.pref_remove.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.num_social() == 0 && self.num_preferences() == 0
    }

    /// The net modification per canonical social edge: additions win
    /// over removals of the same edge, duplicates collapse. Sorted by
    /// edge.
    fn net_social(&self) -> Vec<((UserId, UserId), Mod)> {
        // Sort Insert before Delete per edge; dedup keeps the first of
        // each run, so Insert wins (remove-then-add ends present).
        let mut mods: Vec<((UserId, UserId), Mod)> = self
            .social_remove
            .iter()
            .map(|&e| (e, Mod::Delete))
            .chain(self.social_add.iter().map(|&e| (e, Mod::Insert)))
            .collect();
        mods.sort_by_key(|&((a, b), m)| (a, b, m == Mod::Delete));
        mods.dedup_by_key(|&mut (e, _)| e);
        mods
    }

    /// The net modification per preference edge (same rules as social).
    fn net_preferences(&self) -> Vec<((UserId, ItemId), Mod)> {
        let mut v: Vec<((UserId, ItemId), Mod)> = self
            .pref_remove
            .iter()
            .map(|&e| (e, Mod::Delete))
            .chain(self.pref_add.iter().map(|&e| (e, Mod::Insert)))
            .collect();
        v.sort_by_key(|&((u, i), m)| (u, i, m == Mod::Delete));
        v.dedup_by_key(|&mut (e, _)| e);
        v.sort_by_key(|&(e, _)| e);
        v
    }

    /// Apply the social half of the delta to `g` by row patching.
    ///
    /// Returns the new graph and a report of the edges that actually
    /// flipped. The new graph is equal (including CSR layout) to
    /// rebuilding from the updated edge list with [`SocialGraphBuilder`]
    /// — pinned by tests.
    ///
    /// [`SocialGraphBuilder`]: crate::social::SocialGraphBuilder
    pub fn apply_social(
        &self,
        g: &SocialGraph,
    ) -> Result<(SocialGraph, SocialDeltaReport), GraphError> {
        let n = g.num_users();
        let mods = self.net_social();
        for &((a, b), _) in &mods {
            for e in [a, b] {
                if e.index() >= n {
                    return Err(GraphError::NodeOutOfRange { kind: "user", id: e.0, num_nodes: n });
                }
            }
        }

        // Keep only modifications that flip membership.
        let changed: Vec<((UserId, UserId), Mod)> = mods
            .into_iter()
            .filter(|&((a, b), m)| match m {
                Mod::Insert => !g.has_edge(a, b),
                Mod::Delete => g.has_edge(a, b),
            })
            .collect();

        let mut report = SocialDeltaReport {
            changed: changed.iter().map(|&(e, _)| e).collect(),
            touched: changed.iter().flat_map(|&((a, b), _)| [a, b]).collect(),
        };
        report.touched.sort_unstable();
        report.touched.dedup();

        if changed.is_empty() {
            return Ok((g.clone(), report));
        }

        // Directed modification list: each flipped edge patches both
        // endpoint rows.
        let mut dir: Vec<(UserId, UserId, Mod)> = Vec::with_capacity(changed.len() * 2);
        for &((a, b), m) in &changed {
            dir.push((a, b, m));
            dir.push((b, a, m));
        }
        dir.sort_unstable_by_key(|&(u, v, _)| (u, v));

        // New degrees and offsets.
        let mut degrees: Vec<u32> = (0..n).map(|u| g.degree(UserId(u as u32)) as u32).collect();
        for &(u, _, m) in &dir {
            match m {
                Mod::Insert => degrees[u.index()] += 1,
                Mod::Delete => degrees[u.index()] -= 1,
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut acc = 0u32;
        for &d in &degrees {
            acc += d;
            offsets.push(acc);
        }

        let mut neighbors = vec![UserId(0); acc as usize];
        let mut cursor = 0usize; // cursor into `dir`
        for u in 0..n {
            let row_mods = {
                let start = cursor;
                while cursor < dir.len() && dir[cursor].0.index() == u {
                    cursor += 1;
                }
                &dir[start..cursor]
            };
            let old = g.neighbors(UserId(u as u32));
            let out = &mut neighbors[offsets[u] as usize..offsets[u + 1] as usize];
            if row_mods.is_empty() {
                out.copy_from_slice(old);
                continue;
            }
            merge_row(old, row_mods, out, |&(_, v, m)| (v, m));
        }

        Ok((SocialGraph::from_csr(offsets, neighbors), report))
    }

    /// Apply the preference half of the delta to `g` by row patching
    /// (both CSR orientations).
    ///
    /// Returns the new graph and a report of the edges that actually
    /// flipped; equal to a from-scratch
    /// [`PreferenceGraphBuilder`](crate::preference::PreferenceGraphBuilder)
    /// rebuild — pinned by tests.
    pub fn apply_preferences(
        &self,
        g: &PreferenceGraph,
    ) -> Result<(PreferenceGraph, PreferenceDeltaReport), GraphError> {
        let nu = g.num_users();
        let ni = g.num_items();
        let mods = self.net_preferences();
        for &((u, i), _) in &mods {
            if u.index() >= nu {
                return Err(GraphError::NodeOutOfRange { kind: "user", id: u.0, num_nodes: nu });
            }
            if i.index() >= ni {
                return Err(GraphError::NodeOutOfRange { kind: "item", id: i.0, num_nodes: ni });
            }
        }

        let changed: Vec<((UserId, ItemId), Mod)> = mods
            .into_iter()
            .filter(|&((u, i), m)| match m {
                Mod::Insert => !g.has_edge(u, i),
                Mod::Delete => g.has_edge(u, i),
            })
            .collect();

        let mut report = PreferenceDeltaReport {
            changed: changed.iter().map(|&(e, _)| e).collect(),
            touched_users: changed.iter().map(|&((u, _), _)| u).collect(),
            touched_items: changed.iter().map(|&((_, i), _)| i).collect(),
        };
        report.touched_users.sort_unstable();
        report.touched_users.dedup();
        report.touched_items.sort_unstable();
        report.touched_items.dedup();

        if changed.is_empty() {
            return Ok((g.clone(), report));
        }

        // User orientation: `changed` is already sorted by (u, i).
        let mut user_degrees: Vec<u32> =
            (0..nu).map(|u| g.user_degree(UserId(u as u32)) as u32).collect();
        for &((u, _), m) in &changed {
            match m {
                Mod::Insert => user_degrees[u.index()] += 1,
                Mod::Delete => user_degrees[u.index()] -= 1,
            }
        }
        let mut user_offsets = Vec::with_capacity(nu + 1);
        user_offsets.push(0u32);
        let mut acc = 0u32;
        for &d in &user_degrees {
            acc += d;
            user_offsets.push(acc);
        }
        let mut user_items = vec![ItemId(0); acc as usize];
        let mut cursor = 0usize;
        for u in 0..nu {
            let row_mods = {
                let start = cursor;
                while cursor < changed.len() && changed[cursor].0 .0.index() == u {
                    cursor += 1;
                }
                &changed[start..cursor]
            };
            let old = g.items_of(UserId(u as u32));
            let out = &mut user_items[user_offsets[u] as usize..user_offsets[u + 1] as usize];
            if row_mods.is_empty() {
                out.copy_from_slice(old);
                continue;
            }
            merge_row(old, row_mods, out, |&((_, i), m)| (i, m));
        }

        // Item orientation (transpose): re-sort the flips by (i, u).
        let mut by_item: Vec<((ItemId, UserId), Mod)> =
            changed.iter().map(|&((u, i), m)| ((i, u), m)).collect();
        by_item.sort_unstable_by_key(|&(e, _)| e);
        let mut item_degrees: Vec<u32> =
            (0..ni).map(|i| g.item_degree(ItemId(i as u32)) as u32).collect();
        for &((i, _), m) in &by_item {
            match m {
                Mod::Insert => item_degrees[i.index()] += 1,
                Mod::Delete => item_degrees[i.index()] -= 1,
            }
        }
        let mut item_offsets = Vec::with_capacity(ni + 1);
        item_offsets.push(0u32);
        let mut acc = 0u32;
        for &d in &item_degrees {
            acc += d;
            item_offsets.push(acc);
        }
        let mut item_users = vec![UserId(0); acc as usize];
        let mut cursor = 0usize;
        for i in 0..ni {
            let row_mods = {
                let start = cursor;
                while cursor < by_item.len() && by_item[cursor].0 .0.index() == i {
                    cursor += 1;
                }
                &by_item[start..cursor]
            };
            let old = g.users_of(ItemId(i as u32));
            let out = &mut item_users[item_offsets[i] as usize..item_offsets[i + 1] as usize];
            if row_mods.is_empty() {
                out.copy_from_slice(old);
                continue;
            }
            merge_row(old, row_mods, out, |&((_, u), m)| (u, m));
        }

        let patched = PreferenceGraph::from_csr(user_offsets, user_items, item_offsets, item_users);
        Ok((patched, report))
    }
}

/// Merge one sorted CSR row with its sorted, membership-flipping
/// modifications into `out` (sized exactly for the result).
///
/// Every `Insert` target is absent from `old` and every `Delete` target
/// present — guaranteed by the flip filter above — so this is a plain
/// two-pointer merge.
fn merge_row<T: Copy + Ord, M>(old: &[T], mods: &[M], out: &mut [T], key: impl Fn(&M) -> (T, Mod)) {
    let mut oi = 0usize;
    let mut mi = 0usize;
    let mut w = 0usize;
    while oi < old.len() && mi < mods.len() {
        let (mv, mm) = key(&mods[mi]);
        if old[oi] < mv {
            out[w] = old[oi];
            oi += 1;
            w += 1;
        } else if old[oi] == mv {
            debug_assert_eq!(mm, Mod::Delete, "insert target already present");
            oi += 1; // drop it
            mi += 1;
        } else {
            debug_assert_eq!(mm, Mod::Insert, "delete target absent");
            out[w] = mv;
            mi += 1;
            w += 1;
        }
    }
    while oi < old.len() {
        out[w] = old[oi];
        oi += 1;
        w += 1;
    }
    while mi < mods.len() {
        let (mv, mm) = key(&mods[mi]);
        debug_assert_eq!(mm, Mod::Insert, "delete target absent");
        let _ = mm;
        out[w] = mv;
        mi += 1;
        w += 1;
    }
    debug_assert_eq!(w, out.len(), "row length mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preference::preference_graph_from_edges;
    use crate::social::{social_graph_from_edges, SocialGraphBuilder};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn social_add_remove_patch_rows() {
        let g = social_graph_from_edges(5, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut d = GraphDelta::new();
        d.add_social(UserId(3), UserId(4)).unwrap();
        d.remove_social(UserId(2), UserId(1)).unwrap();
        let (g2, report) = d.apply_social(&g).unwrap();
        assert!(g2.has_edge(UserId(3), UserId(4)));
        assert!(!g2.has_edge(UserId(1), UserId(2)));
        assert_eq!(g2.num_edges(), 3);
        assert_eq!(report.changed, vec![(UserId(1), UserId(2)), (UserId(3), UserId(4))]);
        assert_eq!(report.touched, vec![UserId(1), UserId(2), UserId(3), UserId(4)]);
        // Untouched row copied verbatim.
        assert_eq!(g2.neighbors(UserId(0)), g.neighbors(UserId(0)));
    }

    #[test]
    fn noops_are_dropped_from_the_report() {
        let g = social_graph_from_edges(4, &[(0, 1)]).unwrap();
        let mut d = GraphDelta::new();
        d.add_social(UserId(0), UserId(1)).unwrap(); // already present
        d.remove_social(UserId(2), UserId(3)).unwrap(); // already absent
        let (g2, report) = d.apply_social(&g).unwrap();
        assert_eq!(g2, g);
        assert!(report.changed.is_empty());
        assert!(report.touched.is_empty());
    }

    #[test]
    fn remove_then_add_ends_present() {
        let g = social_graph_from_edges(3, &[(0, 1)]).unwrap();
        let mut d = GraphDelta::new();
        d.remove_social(UserId(0), UserId(1)).unwrap();
        d.add_social(UserId(1), UserId(0)).unwrap(); // same edge, other orientation
        let (g2, report) = d.apply_social(&g).unwrap();
        assert!(g2.has_edge(UserId(0), UserId(1)), "insert wins the conflict");
        assert!(report.changed.is_empty(), "present -> present is no flip");

        // Same rule when the edge starts absent: it ends present.
        let empty = social_graph_from_edges(3, &[]).unwrap();
        let (g3, report) = d.apply_social(&empty).unwrap();
        assert!(g3.has_edge(UserId(0), UserId(1)));
        assert_eq!(report.changed, vec![(UserId(0), UserId(1))]);
    }

    #[test]
    fn social_rejects_self_loops_and_range() {
        let g = social_graph_from_edges(2, &[]).unwrap();
        let mut d = GraphDelta::new();
        assert!(d.add_social(UserId(1), UserId(1)).is_err());
        assert!(d.remove_social(UserId(0), UserId(0)).is_err());
        d.add_social(UserId(0), UserId(7)).unwrap();
        assert!(d.apply_social(&g).is_err(), "out-of-range endpoint");
    }

    #[test]
    fn preference_add_remove_both_orientations() {
        let g = preference_graph_from_edges(3, 3, &[(0, 0), (0, 1), (1, 1)]).unwrap();
        let mut d = GraphDelta::new();
        d.add_preference(UserId(2), ItemId(2));
        d.remove_preference(UserId(0), ItemId(1));
        let (g2, report) = d.apply_preferences(&g).unwrap();
        assert!(g2.has_edge(UserId(2), ItemId(2)));
        assert!(!g2.has_edge(UserId(0), ItemId(1)));
        assert_eq!(g2.num_edges(), 3);
        assert_eq!(report.changed, vec![(UserId(0), ItemId(1)), (UserId(2), ItemId(2))]);
        assert_eq!(report.touched_users, vec![UserId(0), UserId(2)]);
        assert_eq!(report.touched_items, vec![ItemId(1), ItemId(2)]);
        // Transpose stays consistent.
        assert_eq!(g2.users_of(ItemId(1)), &[UserId(1)]);
        assert_eq!(g2.users_of(ItemId(2)), &[UserId(2)]);
    }

    #[test]
    fn patched_graphs_equal_full_rebuilds_random() {
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 40usize;
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for u in 0..n as u32 {
            for _ in 0..3 {
                let v = rng.gen_range(0..n as u32);
                if v != u {
                    edges.push((u, v));
                }
            }
        }
        let mut g = social_graph_from_edges(n, &edges).unwrap();
        for round in 0..20 {
            let mut d = GraphDelta::new();
            for _ in 0..rng.gen_range(1..8) {
                let u = UserId(rng.gen_range(0..n as u32));
                let v = UserId(rng.gen_range(0..n as u32));
                if u == v {
                    continue;
                }
                if rng.gen_bool(0.5) {
                    d.add_social(u, v).unwrap();
                } else {
                    d.remove_social(u, v).unwrap();
                }
            }
            let (patched, _) = d.apply_social(&g).unwrap();
            // Reference: full rebuild from the patched edge list.
            let mut b = SocialGraphBuilder::new(n);
            for (u, v) in patched.edges() {
                b.add_edge(u, v).unwrap();
            }
            let rebuilt = b.build();
            assert_eq!(patched, rebuilt, "round {round}: patched CSR diverged from rebuild");
            g = patched;
        }
    }

    #[test]
    fn patched_preferences_equal_toggles_random() {
        let mut rng = SmallRng::seed_from_u64(9);
        let (nu, ni) = (12usize, 8usize);
        let mut g = preference_graph_from_edges(nu, ni, &[(0, 0), (3, 2), (7, 7)]).unwrap();
        for _ in 0..30 {
            let u = UserId(rng.gen_range(0..nu as u32));
            let i = ItemId(rng.gen_range(0..ni as u32));
            let mut d = GraphDelta::new();
            if g.has_edge(u, i) {
                d.remove_preference(u, i);
            } else {
                d.add_preference(u, i);
            }
            let (patched, report) = d.apply_preferences(&g).unwrap();
            assert_eq!(patched, g.toggled_edge(u, i), "patched graph != toggled reference");
            assert_eq!(report.changed, vec![(u, i)]);
            g = patched;
        }
    }

    #[test]
    fn empty_delta_is_identity() {
        let s = social_graph_from_edges(3, &[(0, 1)]).unwrap();
        let p = preference_graph_from_edges(3, 2, &[(1, 1)]).unwrap();
        let d = GraphDelta::new();
        assert!(d.is_empty());
        let (s2, sr) = d.apply_social(&s).unwrap();
        let (p2, pr) = d.apply_preferences(&p).unwrap();
        assert_eq!(s2, s);
        assert_eq!(p2, p);
        assert_eq!(sr, SocialDeltaReport::default());
        assert_eq!(pr, PreferenceDeltaReport::default());
    }
}
