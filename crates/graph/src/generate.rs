//! Synthetic social-graph generators.
//!
//! The paper evaluates on crawled Last.fm and Flixster graphs, which are
//! not bundled here; these generators produce graphs with the structural
//! properties the framework's behaviour depends on — heavy-tailed degree
//! distributions and strong community structure — with every knob
//! (degrees, mixing, community sizes) explicit and seeded.
//!
//! [`planted_communities`] is the workhorse: a degree-corrected planted
//! partition model (Chung–Lu edge sampling within and across planted
//! communities). Classic reference models (Erdős–Rényi, Barabási–Albert,
//! Watts–Strogatz) are included for tests, examples and ablations.

use crate::ids::UserId;
use crate::social::{SocialGraph, SocialGraphBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashSet;

/// Configuration for [`planted_communities`].
#[derive(Clone, Debug)]
pub struct CommunityGraphConfig {
    /// Number of user nodes.
    pub num_users: usize,
    /// Number of planted communities.
    pub num_communities: usize,
    /// Skew of community sizes: 0.0 gives equal sizes; larger values give
    /// a few dominant communities (sizes ∝ (rank+1)^-skew).
    pub community_size_skew: f64,
    /// Target mean degree.
    pub mean_degree: f64,
    /// Target degree standard deviation (heavy tail comes from a
    /// lognormal expected-degree distribution fitted to mean/std).
    pub degree_std: f64,
    /// Fraction of edge endpoints that attach outside the home community
    /// (the LFR "mixing" parameter μ); 0.0 = pure communities.
    pub mixing: f64,
    /// Fraction of each community's members promoted to *hubs* (0 = no
    /// hubs). Hubs bind large communities together: without them a
    /// large community is internally Erdős–Rényi-like and modularity
    /// clustering fragments it, which real social graphs do not
    /// exhibit.
    pub hub_fraction: f64,
    /// A hub's expected degree as a fraction of its community size.
    pub hub_strength: f64,
    /// Triadic-closure intensity: per node, about `degree × closure`
    /// random neighbor pairs are connected after the base wiring.
    /// Real social graphs have high clustering coefficients; without
    /// closure, structural similarity (e.g. Common Neighbors) is flat
    /// across community members instead of concentrating on close
    /// friends. 0 disables. Raises mean degree by roughly
    /// `2 × closure × mean_degree`; the generator compensates by
    /// shrinking the base wiring target.
    pub triadic_closure: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CommunityGraphConfig {
    fn default() -> Self {
        CommunityGraphConfig {
            num_users: 1000,
            num_communities: 10,
            community_size_skew: 0.8,
            mean_degree: 12.0,
            degree_std: 14.0,
            mixing: 0.1,
            hub_fraction: 0.0,
            hub_strength: 0.25,
            triadic_closure: 0.0,
            seed: 7,
        }
    }
}

/// Result of [`planted_communities`]: the graph plus the ground-truth
/// community of every user (useful for validating Louvain).
#[derive(Clone, Debug)]
pub struct PlantedGraph {
    /// The generated social graph.
    pub graph: SocialGraph,
    /// `community[u]` is the planted community index of user `u`.
    pub community: Vec<u32>,
}

/// Sample expected degrees from a lognormal fitted to (mean, std),
/// clamped to `[1, n-1]`.
fn sample_expected_degrees(n: usize, mean: f64, std: f64, rng: &mut SmallRng) -> Vec<f64> {
    // Lognormal moment matching: if X ~ LN(m, s²) then
    // E[X] = exp(m + s²/2), Var[X] = (exp(s²)-1)·exp(2m+s²).
    let mean = mean.max(1.0);
    let cv2 = (std / mean).powi(2);
    let s2 = (1.0 + cv2).ln();
    let m = mean.ln() - s2 / 2.0;
    let s = s2.sqrt();
    (0..n)
        .map(|_| {
            // Box-Muller standard normal.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen::<f64>();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (m + s * z).exp().clamp(1.0, (n - 1) as f64)
        })
        .collect()
}

/// Cumulative-weight index for O(log n) weighted sampling.
struct WeightedIndex {
    cumulative: Vec<f64>,
}

impl WeightedIndex {
    fn new(weights: impl Iterator<Item = f64>) -> Option<Self> {
        let mut cumulative = Vec::new();
        let mut acc = 0.0;
        for w in weights {
            acc += w.max(0.0);
            cumulative.push(acc);
        }
        if acc <= 0.0 {
            None
        } else {
            Some(WeightedIndex { cumulative })
        }
    }

    fn sample(&self, rng: &mut SmallRng) -> usize {
        let total = *self.cumulative.last().unwrap();
        let x = rng.gen_range(0.0..total);
        match self.cumulative.binary_search_by(|c| c.partial_cmp(&x).unwrap()) {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i,
        }
    }
}

/// Partition `num_users` into `num_communities` sizes ∝ `(rank+1)^-skew`,
/// each at least 1.
fn community_sizes(num_users: usize, num_communities: usize, skew: f64) -> Vec<usize> {
    assert!(num_communities >= 1, "need at least one community");
    assert!(num_users >= num_communities, "need at least one user per community");
    let raw: Vec<f64> = (0..num_communities).map(|r| ((r + 1) as f64).powf(-skew)).collect();
    let total: f64 = raw.iter().sum();
    let mut sizes: Vec<usize> =
        raw.iter().map(|w| ((w / total) * num_users as f64).floor().max(1.0) as usize).collect();
    // Distribute the rounding remainder to the largest communities first.
    let mut assigned: usize = sizes.iter().sum();
    let mut r = 0usize;
    while assigned < num_users {
        sizes[r % num_communities] += 1;
        assigned += 1;
        r += 1;
    }
    while assigned > num_users {
        let idx = sizes.iter().enumerate().max_by_key(|&(_, &s)| s).map(|(i, _)| i).unwrap();
        sizes[idx] -= 1;
        assigned -= 1;
    }
    sizes
}

/// Generate a degree-corrected planted-partition graph.
///
/// Users are assigned to communities (sizes skewed per the config), each
/// user gets a heavy-tailed expected degree, and edges are sampled
/// Chung–Lu style: a `(1-mixing)` fraction of each node's expected edge
/// endpoints land inside its community, the rest anywhere. Duplicate
/// edges and self loops are rejected and resampled (bounded retries), so
/// realised degrees track — but do not exactly equal — expectations.
pub fn planted_communities(config: &CommunityGraphConfig) -> PlantedGraph {
    let n = config.num_users;
    let mut rng = SmallRng::seed_from_u64(config.seed);

    let sizes = community_sizes(n, config.num_communities, config.community_size_skew);
    let mut community = vec![0u32; n];
    let mut members: Vec<Vec<UserId>> = Vec::with_capacity(sizes.len());
    {
        let mut next = 0u32;
        for (c, &sz) in sizes.iter().enumerate() {
            let mut m = Vec::with_capacity(sz);
            for _ in 0..sz {
                community[next as usize] = c as u32;
                m.push(UserId(next));
                next += 1;
            }
            members.push(m);
        }
    }

    // Triadic closure multiplies degrees by roughly (1 + 2·closure);
    // shrink the base wiring so the configured targets refer to the
    // final graph.
    let tc = config.triadic_closure.max(0.0);
    let deg_scale = 1.0 / (1.0 + 2.0 * tc);
    let mut theta = sample_expected_degrees(
        n,
        config.mean_degree * deg_scale,
        config.degree_std * deg_scale,
        &mut rng,
    );
    // Promote a few members of each community to hubs whose expected
    // degree scales with the community size.
    if config.hub_fraction > 0.0 {
        for mem in &members {
            let hubs =
                ((mem.len() as f64 * config.hub_fraction).round() as usize).max(1).min(mem.len());
            for _ in 0..hubs {
                let u = mem[rng.gen_range(0..mem.len())];
                let target =
                    (config.hub_strength * mem.len() as f64).min((mem.len() - 1) as f64).max(1.0);
                let t = &mut theta[u.index()];
                if *t < target {
                    *t = target;
                }
            }
        }
    }
    let mixing = config.mixing.clamp(0.0, 1.0);

    let mut builder = SocialGraphBuilder::new(n);
    let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
    // Adjacency mirror, maintained for the triadic-closure pass.
    let mut adj: Vec<Vec<UserId>> = vec![Vec::new(); n];
    let push_edge = |builder: &mut SocialGraphBuilder,
                     seen: &mut FxHashSet<(u32, u32)>,
                     adj: &mut Vec<Vec<UserId>>,
                     a: UserId,
                     b: UserId|
     -> bool {
        if a == b {
            return false;
        }
        let key = if a < b { (a.0, b.0) } else { (b.0, a.0) };
        if seen.insert(key) {
            builder.add_edge(a, b).expect("generated ids in range");
            adj[a.index()].push(b);
            adj[b.index()].push(a);
            true
        } else {
            false
        }
    };

    // Internal edges, community by community.
    for mem in &members {
        if mem.len() < 2 {
            continue;
        }
        let sum_theta: f64 = mem.iter().map(|u| theta[u.index()]).sum();
        let target = ((1.0 - mixing) * sum_theta / 2.0).round() as usize;
        if target == 0 {
            continue;
        }
        let index = match WeightedIndex::new(mem.iter().map(|u| theta[u.index()])) {
            Some(i) => i,
            None => continue,
        };
        let mut placed = 0usize;
        let mut attempts = 0usize;
        let max_attempts = target * 20 + 100;
        while placed < target && attempts < max_attempts {
            attempts += 1;
            let a = mem[index.sample(&mut rng)];
            let b = mem[index.sample(&mut rng)];
            if push_edge(&mut builder, &mut seen, &mut adj, a, b) {
                placed += 1;
            }
        }
    }

    // Cross-community edges, sampled globally; endpoints in the same
    // community are rejected (those slots were covered above).
    if mixing > 0.0 && config.num_communities > 1 {
        let sum_theta: f64 = theta.iter().sum();
        let target = (mixing * sum_theta / 2.0).round() as usize;
        if target > 0 {
            let index = WeightedIndex::new(theta.iter().copied()).expect("positive weights");
            let mut placed = 0usize;
            let mut attempts = 0usize;
            let max_attempts = target * 20 + 100;
            while placed < target && attempts < max_attempts {
                attempts += 1;
                let a = UserId(index.sample(&mut rng) as u32);
                let b = UserId(index.sample(&mut rng) as u32);
                if community[a.index()] == community[b.index()] {
                    continue;
                }
                if push_edge(&mut builder, &mut seen, &mut adj, a, b) {
                    placed += 1;
                }
            }
        }
    }

    // Triadic closure: connect random neighbor pairs, creating the
    // local clique structure (high clustering coefficient) that makes
    // structural similarity concentrate on close friends.
    if tc > 0.0 {
        for u in 0..n {
            let deg = adj[u].len();
            if deg < 2 {
                continue;
            }
            let attempts = (deg as f64 * tc).round() as usize;
            for _ in 0..attempts {
                let v = adj[u][rng.gen_range(0..deg)];
                let w = adj[u][rng.gen_range(0..deg)];
                push_edge(&mut builder, &mut seen, &mut adj, v, w);
            }
        }
    }

    PlantedGraph { graph: builder.build(), community }
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct uniform random edges
/// (capped at the number of possible pairs).
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> SocialGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let max_m = n.saturating_mul(n.saturating_sub(1)) / 2;
    let m = m.min(max_m);
    let mut builder = SocialGraphBuilder::new(n);
    let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
    while seen.len() < m {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a == b {
            continue;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if seen.insert(key) {
            builder.add_edge(UserId(a), UserId(b)).expect("in range");
        }
    }
    builder.build()
}

/// Barabási–Albert preferential attachment: start from an `m`-clique and
/// attach each new node to `m` existing nodes chosen ∝ degree.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> SocialGraph {
    assert!(m >= 1, "attachment count must be >= 1");
    assert!(n > m, "need more nodes than the attachment count");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = SocialGraphBuilder::new(n);
    // Repeated-endpoint list: sampling uniformly from it is sampling
    // proportional to degree.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);
    for a in 0..m as u32 {
        for b in (a + 1)..m as u32 {
            builder.add_edge(UserId(a), UserId(b)).expect("in range");
            endpoints.push(a);
            endpoints.push(b);
        }
    }
    for v in m as u32..n as u32 {
        let mut chosen: FxHashSet<u32> = FxHashSet::default();
        let mut guard = 0;
        while chosen.len() < m && guard < 50 * m {
            guard += 1;
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v {
                chosen.insert(t);
            }
        }
        for &t in &chosen {
            builder.add_edge(UserId(v), UserId(t)).expect("in range");
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    builder.build()
}

/// Watts–Strogatz small world: ring lattice with `k` nearest neighbors
/// (k even), each edge rewired with probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> SocialGraph {
    assert!(k.is_multiple_of(2), "k must be even");
    assert!(n > k, "need n > k");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges: FxHashSet<(u32, u32)> = FxHashSet::default();
    let canon = |a: u32, b: u32| if a < b { (a, b) } else { (b, a) };
    for u in 0..n as u32 {
        for j in 1..=(k / 2) as u32 {
            let v = (u + j) % n as u32;
            edges.insert(canon(u, v));
        }
    }
    let lattice: Vec<(u32, u32)> = edges.iter().copied().collect();
    for (u, v) in lattice {
        if rng.gen::<f64>() < beta {
            // Rewire the far endpoint.
            let mut guard = 0;
            loop {
                guard += 1;
                if guard > 100 {
                    break;
                }
                let w = rng.gen_range(0..n as u32);
                if w == u || edges.contains(&canon(u, w)) {
                    continue;
                }
                edges.remove(&canon(u, v));
                edges.insert(canon(u, w));
                break;
            }
        }
    }
    let mut builder = SocialGraphBuilder::new(n);
    for (u, v) in edges {
        builder.add_edge(UserId(u), UserId(v)).expect("in range");
    }
    builder.build()
}

/// A tiny connected component: a random spanning tree over `size` nodes
/// with optional extra edges, appended to `builder` starting at id
/// `first_id`. Used to replicate Last.fm's 19 small disconnected
/// components (2–7 nodes each).
pub fn attach_small_component(
    builder: &mut SocialGraphBuilder,
    first_id: u32,
    size: usize,
    extra_edges: usize,
    rng: &mut SmallRng,
) {
    assert!(size >= 2, "a component needs at least 2 nodes");
    // Random attachment tree.
    for v in 1..size as u32 {
        let parent = rng.gen_range(0..v);
        builder
            .add_edge(UserId(first_id + v), UserId(first_id + parent))
            .expect("component ids in range");
    }
    for _ in 0..extra_edges {
        let a = rng.gen_range(0..size as u32);
        let b = rng.gen_range(0..size as u32);
        if a != b {
            // Duplicates collapse in the builder.
            builder.add_edge(UserId(first_id + a), UserId(first_id + b)).expect("in range");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::connected_components;

    #[test]
    fn community_sizes_partition_exactly() {
        for (n, k, skew) in [(100, 7, 0.0), (1000, 16, 0.8), (57, 3, 2.0), (10, 10, 1.0)] {
            let sizes = community_sizes(n, k, skew);
            assert_eq!(sizes.len(), k);
            assert_eq!(sizes.iter().sum::<usize>(), n);
            assert!(sizes.iter().all(|&s| s >= 1));
        }
    }

    #[test]
    fn planted_graph_matches_targets_roughly() {
        let cfg = CommunityGraphConfig {
            num_users: 2000,
            num_communities: 12,
            mean_degree: 14.0,
            degree_std: 10.0,
            mixing: 0.1,
            seed: 42,
            ..Default::default()
        };
        let pg = planted_communities(&cfg);
        assert_eq!(pg.graph.num_users(), 2000);
        assert_eq!(pg.community.len(), 2000);
        let mean = pg.graph.mean_degree();
        assert!((10.0..18.0).contains(&mean), "mean degree {mean} far from target 14");
        // Communities should be visibly denser inside than outside.
        let mut internal = 0usize;
        let mut external = 0usize;
        for (u, v) in pg.graph.edges() {
            if pg.community[u.index()] == pg.community[v.index()] {
                internal += 1;
            } else {
                external += 1;
            }
        }
        assert!(
            internal > 4 * external,
            "community structure too weak: {internal} internal vs {external} external"
        );
    }

    #[test]
    fn planted_graph_deterministic_per_seed() {
        let cfg = CommunityGraphConfig { num_users: 300, seed: 9, ..Default::default() };
        let a = planted_communities(&cfg);
        let b = planted_communities(&cfg);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.community, b.community);
        let cfg2 = CommunityGraphConfig { seed: 10, ..cfg };
        let c = planted_communities(&cfg2);
        assert_ne!(a.graph, c.graph, "different seeds should differ");
    }

    #[test]
    fn hubs_bind_large_communities() {
        let base = CommunityGraphConfig {
            num_users: 1500,
            num_communities: 3,
            community_size_skew: 0.0,
            mean_degree: 12.0,
            degree_std: 8.0,
            mixing: 0.05,
            seed: 17,
            ..Default::default()
        };
        let no_hubs = planted_communities(&base);
        let with_hubs = planted_communities(&CommunityGraphConfig {
            hub_fraction: 0.01,
            hub_strength: 0.3,
            ..base
        });
        // Hubs create nodes with degree ~ community size fraction.
        let max_no = no_hubs.graph.max_degree();
        let max_with = with_hubs.graph.max_degree();
        assert!(
            max_with as f64 > 1.5 * max_no as f64,
            "hub max degree {max_with} should dwarf {max_no}"
        );
        assert!(max_with >= 100, "hub degree {max_with} should scale with community size");
    }

    #[test]
    fn triadic_closure_raises_clustering_coefficient() {
        use crate::stats::average_clustering_coefficient;
        let base = CommunityGraphConfig {
            num_users: 800,
            num_communities: 8,
            mean_degree: 12.0,
            degree_std: 6.0,
            seed: 23,
            ..Default::default()
        };
        let open = planted_communities(&base);
        let closed = planted_communities(&CommunityGraphConfig { triadic_closure: 0.5, ..base });
        let cc_open = average_clustering_coefficient(&open.graph);
        let cc_closed = average_clustering_coefficient(&closed.graph);
        // Small dense communities already have nontrivial clustering;
        // closure must lift it clearly and into the real-graph band.
        assert!(
            cc_closed > 1.8 * cc_open.max(0.005) && cc_closed > 0.2,
            "closure should lift clustering coefficient: {cc_open} -> {cc_closed}"
        );
        // Degree compensation keeps the mean near the target.
        let mean = closed.graph.mean_degree();
        assert!((8.0..16.0).contains(&mean), "mean degree {mean} drifted from 12");
    }

    #[test]
    fn erdos_renyi_edge_count() {
        let g = erdos_renyi(50, 100, 3);
        assert_eq!(g.num_users(), 50);
        assert_eq!(g.num_edges(), 100);
        // Cap at complete graph.
        let g2 = erdos_renyi(5, 1000, 3);
        assert_eq!(g2.num_edges(), 10);
    }

    #[test]
    fn barabasi_albert_properties() {
        let g = barabasi_albert(500, 3, 11);
        assert_eq!(g.num_users(), 500);
        // Every non-seed node attaches to m=3 others, so min degree >= 3
        // among attached nodes; edges ~= 3 + 497*3.
        assert!(g.num_edges() >= 3 + 400 * 3);
        let cc = connected_components(&g);
        assert_eq!(cc.count(), 1, "BA graphs are connected");
        // Heavy tail: max degree should be much larger than the mean.
        assert!(g.max_degree() as f64 > 3.0 * g.mean_degree());
    }

    #[test]
    fn watts_strogatz_degree_regularity() {
        let g = watts_strogatz(100, 4, 0.0, 5);
        assert_eq!(g.num_edges(), 200);
        for u in g.users() {
            assert_eq!(g.degree(u), 4);
        }
        // With rewiring, edge count is preserved.
        let g2 = watts_strogatz(100, 4, 0.3, 5);
        assert_eq!(g2.num_edges(), 200);
    }

    #[test]
    fn small_components_attach() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut b = SocialGraphBuilder::new(12);
        b.add_edge(UserId(0), UserId(1)).unwrap();
        attach_small_component(&mut b, 2, 5, 2, &mut rng);
        attach_small_component(&mut b, 7, 5, 0, &mut rng);
        let g = b.build();
        let cc = connected_components(&g);
        assert_eq!(cc.count(), 3);
        let mut sizes = cc.sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 5, 5]);
    }
}
