//! Dataset summary statistics — the quantities of the paper's Table 1.

use crate::ids::UserId;
use crate::preference::PreferenceGraph;
use crate::social::SocialGraph;

/// Global (transitivity-style average of local) clustering coefficient:
/// the mean over users with degree ≥ 2 of
/// `closed neighbor pairs / possible neighbor pairs`.
///
/// Real social graphs sit around 0.1–0.4; Erdős–Rényi graphs near
/// `mean_degree / n`. The synthetic generators use triadic closure to
/// land in the realistic band — this statistic is how tests verify it.
pub fn average_clustering_coefficient(g: &SocialGraph) -> f64 {
    let mut total = 0.0;
    let mut counted = 0usize;
    for u in g.users() {
        let ns = g.neighbors(u);
        let d = ns.len();
        if d < 2 {
            continue;
        }
        let mut closed = 0usize;
        for (k, &v) in ns.iter().enumerate() {
            for &w in &ns[k + 1..] {
                if g.has_edge(v, w) {
                    closed += 1;
                }
            }
        }
        total += closed as f64 / (d * (d - 1) / 2) as f64;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Mean and (population) standard deviation of a sequence of counts.
fn mean_std(values: impl Iterator<Item = usize> + Clone) -> (f64, f64) {
    let n = values.clone().count();
    if n == 0 {
        return (0.0, 0.0);
    }
    let sum: f64 = values.clone().map(|v| v as f64).sum();
    let mean = sum / n as f64;
    let var: f64 = values.map(|v| (v as f64 - mean).powi(2)).sum::<f64>() / n as f64;
    (mean, var.sqrt())
}

/// The summary row the paper reports for each dataset (Table 1).
///
/// Note the paper's "avg. item degree" is the average number of
/// preference edges *per user* (items listened-to/rated per user): for
/// Last.fm, 92,198 / 1,892 ≈ 48.7 — we follow that convention and name
/// the field unambiguously.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetStats {
    /// `|U|` — number of users.
    pub num_users: usize,
    /// `|E_s|` — number of social edges.
    pub num_social_edges: usize,
    /// Average social degree.
    pub avg_user_degree: f64,
    /// Std of social degree.
    pub std_user_degree: f64,
    /// `|I|` — number of items.
    pub num_items: usize,
    /// `|E_p|` — number of preference edges.
    pub num_preference_edges: usize,
    /// Average preference edges per user (the paper's "avg. item degree").
    pub avg_items_per_user: f64,
    /// Std of preference edges per user.
    pub std_items_per_user: f64,
    /// `1 - |E_p| / (|U|·|I|)`.
    pub sparsity: f64,
}

impl DatasetStats {
    /// Compute the Table-1 statistics for a dataset.
    pub fn compute(social: &SocialGraph, prefs: &PreferenceGraph) -> DatasetStats {
        let (avg_user_degree, std_user_degree) =
            mean_std((0..social.num_users()).map(|u| social.degree(UserId(u as u32))));
        let (avg_items_per_user, std_items_per_user) =
            mean_std((0..prefs.num_users()).map(|u| prefs.user_degree(UserId(u as u32))));
        DatasetStats {
            num_users: social.num_users(),
            num_social_edges: social.num_edges(),
            avg_user_degree,
            std_user_degree,
            num_items: prefs.num_items(),
            num_preference_edges: prefs.num_edges(),
            avg_items_per_user,
            std_items_per_user,
            sparsity: prefs.sparsity(),
        }
    }

    /// Render in the layout of the paper's Table 1.
    pub fn to_table_rows(&self, label: &str) -> Vec<(String, String)> {
        vec![
            ("dataset".into(), label.to_string()),
            ("|U|".into(), self.num_users.to_string()),
            ("|E_s|".into(), self.num_social_edges.to_string()),
            (
                "avg. user degree".into(),
                format!("{:.1} (std. {:.1})", self.avg_user_degree, self.std_user_degree),
            ),
            ("|I|".into(), self.num_items.to_string()),
            ("|E_p|".into(), self.num_preference_edges.to_string()),
            (
                "avg. item degree".into(),
                format!("{:.1} (std. {:.1})", self.avg_items_per_user, self.std_items_per_user),
            ),
            ("sparsity(G_p)".into(), format!("{:.3}", self.sparsity)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preference::preference_graph_from_edges;
    use crate::social::social_graph_from_edges;

    #[test]
    fn stats_hand_checked() {
        let s = social_graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let p = preference_graph_from_edges(4, 5, &[(0, 0), (0, 1), (1, 2), (2, 3)]).unwrap();
        let st = DatasetStats::compute(&s, &p);
        assert_eq!(st.num_users, 4);
        assert_eq!(st.num_social_edges, 4);
        assert!((st.avg_user_degree - 2.0).abs() < 1e-12);
        assert!((st.std_user_degree - 0.0).abs() < 1e-12);
        assert_eq!(st.num_items, 5);
        assert_eq!(st.num_preference_edges, 4);
        assert!((st.avg_items_per_user - 1.0).abs() < 1e-12);
        // degrees 2,1,1,0 -> mean 1, var (1+0+0+1)/4 = 0.5
        assert!((st.std_items_per_user - 0.5f64.sqrt()).abs() < 1e-12);
        assert!((st.sparsity - (1.0 - 4.0 / 20.0)).abs() < 1e-12);
    }

    #[test]
    fn clustering_coefficient_hand_checked() {
        use crate::social::social_graph_from_edges;
        // Triangle: every node has cc 1.
        let tri = social_graph_from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        assert!((average_clustering_coefficient(&tri) - 1.0).abs() < 1e-12);
        // Path: middle node has two unconnected neighbors -> cc 0;
        // endpoints (degree 1) don't count.
        let path = social_graph_from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(average_clustering_coefficient(&path), 0.0);
        // Triangle plus pendant on node 0: node 0 has neighbors
        // {1,2,3}, one closed pair of three -> 1/3; nodes 1,2 -> 1.
        let tp = social_graph_from_edges(4, &[(0, 1), (1, 2), (0, 2), (0, 3)]).unwrap();
        let expected = (1.0 / 3.0 + 1.0 + 1.0) / 3.0;
        assert!((average_clustering_coefficient(&tp) - expected).abs() < 1e-12);
        // No node with degree >= 2.
        let pair = social_graph_from_edges(2, &[(0, 1)]).unwrap();
        assert_eq!(average_clustering_coefficient(&pair), 0.0);
    }

    #[test]
    fn empty_dataset_stats() {
        let s = social_graph_from_edges(0, &[]).unwrap();
        let p = preference_graph_from_edges(0, 0, &[]).unwrap();
        let st = DatasetStats::compute(&s, &p);
        assert_eq!(st.avg_user_degree, 0.0);
        assert_eq!(st.sparsity, 1.0);
    }

    #[test]
    fn table_rows_render() {
        let s = social_graph_from_edges(2, &[(0, 1)]).unwrap();
        let p = preference_graph_from_edges(2, 2, &[(0, 0)]).unwrap();
        let st = DatasetStats::compute(&s, &p);
        let rows = st.to_table_rows("toy");
        assert_eq!(rows[0].1, "toy");
        assert!(rows.iter().any(|(k, _)| k == "sparsity(G_p)"));
    }
}
