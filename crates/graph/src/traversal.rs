//! BFS utilities and connected components over the social graph.
//!
//! These are the building blocks for the Graph-Distance similarity
//! measure (BFS truncated at depth `d`), for the preprocessing step that
//! extracts the main connected component (paper §6.1), and for the
//! synthetic generators that must reproduce the Last.fm component
//! structure (one giant component plus 19 tiny ones).

use crate::ids::UserId;
use crate::social::SocialGraph;
use std::collections::VecDeque;

/// Reusable BFS scratch state, so per-user traversals don't reallocate.
///
/// `visit_mark` uses a generation counter instead of clearing the whole
/// array between traversals.
#[derive(Clone, Debug)]
pub struct BfsScratch {
    mark: Vec<u32>,
    generation: u32,
    queue: VecDeque<(UserId, u32)>,
}

impl BfsScratch {
    /// Scratch sized for a graph with `num_users` users.
    pub fn new(num_users: usize) -> Self {
        BfsScratch { mark: vec![0; num_users], generation: 0, queue: VecDeque::new() }
    }

    fn begin(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Extremely rare wrap: reset marks so stale entries can't match.
            self.mark.iter_mut().for_each(|m| *m = 0);
            self.generation = 1;
        }
        self.queue.clear();
    }

    #[inline]
    fn visit(&mut self, u: UserId) -> bool {
        let m = &mut self.mark[u.index()];
        if *m == self.generation {
            false
        } else {
            *m = self.generation;
            true
        }
    }
}

/// Breadth-first search from `source` up to `max_depth` hops, invoking
/// `on_reach(user, depth)` for every user reached at depth `1..=max_depth`
/// (the source itself is not reported).
pub fn bfs_within<F: FnMut(UserId, u32)>(
    g: &SocialGraph,
    source: UserId,
    max_depth: u32,
    scratch: &mut BfsScratch,
    mut on_reach: F,
) {
    scratch.begin();
    scratch.visit(source);
    scratch.queue.push_back((source, 0));
    while let Some((u, d)) = scratch.queue.pop_front() {
        if d == max_depth {
            continue;
        }
        for &v in g.neighbors(u) {
            if scratch.visit(v) {
                on_reach(v, d + 1);
                scratch.queue.push_back((v, d + 1));
            }
        }
    }
}

/// Length of the shortest path from `u` to `v`, if it is at most
/// `max_depth`; `None` otherwise (or if disconnected). `u == v` gives 0.
pub fn shortest_distance_within(
    g: &SocialGraph,
    u: UserId,
    v: UserId,
    max_depth: u32,
    scratch: &mut BfsScratch,
) -> Option<u32> {
    if u == v {
        return Some(0);
    }
    let mut found = None;
    bfs_within(g, u, max_depth, scratch, |w, d| {
        if w == v && found.is_none() {
            found = Some(d);
        }
    });
    found
}

/// All users within `max_depth` hops of any of `sources`, including the
/// sources themselves, sorted ascending and deduplicated.
///
/// This is the reach set behind dirty-row tracking for incremental
/// similarity updates: a similarity measure with influence radius `r`
/// can only change rows inside `reach_within(g, touched, r)`.
pub fn reach_within(
    g: &SocialGraph,
    sources: &[UserId],
    max_depth: u32,
    scratch: &mut BfsScratch,
) -> Vec<UserId> {
    let mut reached: Vec<UserId> = Vec::new();
    for &s in sources {
        if s.index() >= g.num_users() {
            continue;
        }
        reached.push(s);
        bfs_within(g, s, max_depth, scratch, |v, _| reached.push(v));
    }
    reached.sort_unstable();
    reached.dedup();
    reached
}

/// Connected components of the social graph.
#[derive(Clone, Debug)]
pub struct ConnectedComponents {
    /// `component[u]` is the 0-based component index of user `u`.
    pub component: Vec<u32>,
    /// Size of each component, indexed by component id.
    pub sizes: Vec<usize>,
}

impl ConnectedComponents {
    /// Number of components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Component id of the largest component (ties broken by lowest id).
    pub fn largest(&self) -> Option<u32> {
        self.sizes
            .iter()
            .enumerate()
            .max_by_key(|&(idx, &s)| (s, std::cmp::Reverse(idx)))
            .map(|(idx, _)| idx as u32)
    }

    /// Users belonging to the given component, in ascending id order.
    pub fn members(&self, comp: u32) -> Vec<UserId> {
        self.component
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == comp)
            .map(|(i, _)| UserId(i as u32))
            .collect()
    }
}

/// Compute connected components with iterative BFS.
pub fn connected_components(g: &SocialGraph) -> ConnectedComponents {
    let n = g.num_users();
    let mut component = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut queue = VecDeque::new();
    for start in 0..n {
        if component[start] != u32::MAX {
            continue;
        }
        let cid = sizes.len() as u32;
        let mut size = 0usize;
        component[start] = cid;
        queue.push_back(UserId(start as u32));
        while let Some(u) = queue.pop_front() {
            size += 1;
            for &v in g.neighbors(u) {
                let c = &mut component[v.index()];
                if *c == u32::MAX {
                    *c = cid;
                    queue.push_back(v);
                }
            }
        }
        sizes.push(size);
    }
    ConnectedComponents { component, sizes }
}

/// Extract the subgraph induced by `keep` (any order, deduplicated),
/// returning the subgraph and the mapping `new id -> original id`.
///
/// Users are renumbered densely in ascending original-id order.
pub fn induced_subgraph(g: &SocialGraph, keep: &[UserId]) -> (SocialGraph, Vec<UserId>) {
    let mut sorted: Vec<UserId> = keep.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut old_to_new = vec![u32::MAX; g.num_users()];
    for (new, &old) in sorted.iter().enumerate() {
        old_to_new[old.index()] = new as u32;
    }
    let mut b = crate::social::SocialGraphBuilder::new(sorted.len());
    for &old_u in &sorted {
        let nu = old_to_new[old_u.index()];
        for &old_v in g.neighbors(old_u) {
            let nv = old_to_new[old_v.index()];
            if nv != u32::MAX && nu < nv {
                b.add_edge(UserId(nu), UserId(nv)).expect("mapped ids in range");
            }
        }
    }
    (b.build(), sorted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::social::social_graph_from_edges;

    fn two_components() -> SocialGraph {
        // Path 0-1-2-3 and triangle 4-5-6; 7 isolated.
        social_graph_from_edges(8, &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 4)]).unwrap()
    }

    #[test]
    fn bfs_depth_limits() {
        let g = two_components();
        let mut scratch = BfsScratch::new(g.num_users());
        let mut reached = Vec::new();
        bfs_within(&g, UserId(0), 2, &mut scratch, |u, d| reached.push((u, d)));
        reached.sort();
        assert_eq!(reached, vec![(UserId(1), 1), (UserId(2), 2)]);
    }

    #[test]
    fn bfs_does_not_report_source() {
        let g = two_components();
        let mut scratch = BfsScratch::new(g.num_users());
        bfs_within(&g, UserId(4), 5, &mut scratch, |u, _| assert_ne!(u, UserId(4)));
    }

    #[test]
    fn scratch_reuse_is_clean() {
        let g = two_components();
        let mut scratch = BfsScratch::new(g.num_users());
        let mut first = 0;
        bfs_within(&g, UserId(0), 3, &mut scratch, |_, _| first += 1);
        assert_eq!(first, 3);
        let mut second = 0;
        bfs_within(&g, UserId(0), 3, &mut scratch, |_, _| second += 1);
        assert_eq!(second, 3, "stale marks leaked between traversals");
    }

    #[test]
    fn shortest_distances() {
        let g = two_components();
        let mut s = BfsScratch::new(g.num_users());
        assert_eq!(shortest_distance_within(&g, UserId(0), UserId(3), 3, &mut s), Some(3));
        assert_eq!(shortest_distance_within(&g, UserId(0), UserId(3), 2, &mut s), None);
        assert_eq!(shortest_distance_within(&g, UserId(0), UserId(4), 10, &mut s), None);
        assert_eq!(shortest_distance_within(&g, UserId(5), UserId(5), 1, &mut s), Some(0));
        assert_eq!(shortest_distance_within(&g, UserId(4), UserId(6), 3, &mut s), Some(1));
    }

    #[test]
    fn reach_within_unions_sources() {
        let g = two_components();
        let mut s = BfsScratch::new(g.num_users());
        assert_eq!(
            reach_within(&g, &[UserId(0), UserId(4)], 1, &mut s),
            vec![UserId(0), UserId(1), UserId(4), UserId(5), UserId(6)]
        );
        // Radius 0 is just the (deduplicated, sorted) sources.
        assert_eq!(
            reach_within(&g, &[UserId(3), UserId(3), UserId(1)], 0, &mut s),
            vec![UserId(1), UserId(3)]
        );
        assert_eq!(reach_within(&g, &[], 2, &mut s), Vec::<UserId>::new());
    }

    #[test]
    fn components_found() {
        let g = two_components();
        let cc = connected_components(&g);
        assert_eq!(cc.count(), 3);
        let mut sizes = cc.sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 3, 4]);
        assert_eq!(cc.component[0], cc.component[3]);
        assert_ne!(cc.component[0], cc.component[4]);
        let largest = cc.largest().unwrap();
        assert_eq!(cc.sizes[largest as usize], 4);
        assert_eq!(cc.members(largest), vec![UserId(0), UserId(1), UserId(2), UserId(3)]);
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let g = two_components();
        let (sub, mapping) = induced_subgraph(&g, &[UserId(4), UserId(6), UserId(5)]);
        assert_eq!(sub.num_users(), 3);
        assert_eq!(sub.num_edges(), 3); // triangle survives
        assert_eq!(mapping, vec![UserId(4), UserId(5), UserId(6)]);
        // Edge 2-3 is cut when only one endpoint is kept.
        let (sub2, _) = induced_subgraph(&g, &[UserId(2), UserId(7)]);
        assert_eq!(sub2.num_edges(), 0);
        assert_eq!(sub2.num_users(), 2);
    }
}
