//! Weighted preference graphs — the paper's §7 "weighted preference
//! edges (e.g., ratings)" extension.
//!
//! Weights are constrained to `[0, 1]` (normalize ratings before
//! building). That keeps the private framework's sensitivity argument
//! intact: adding or removing one edge changes a cluster's weight sum
//! by at most 1, exactly as in the unweighted case, so the same
//! `Lap(1/(|c|·ε))` noise suffices.

use crate::error::GraphError;
use crate::ids::{ItemId, UserId};
use crate::preference::{PreferenceGraph, PreferenceGraphBuilder};

/// Immutable bipartite user→item graph with edge weights in `[0, 1]`.
#[derive(Clone, Debug, PartialEq)]
pub struct WeightedPreferenceGraph {
    user_offsets: Vec<u32>,
    user_items: Vec<ItemId>,
    user_weights: Vec<f32>,
    item_offsets: Vec<u32>,
    item_users: Vec<UserId>,
    item_weights: Vec<f32>,
}

impl WeightedPreferenceGraph {
    /// Number of user nodes.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.user_offsets.len() - 1
    }

    /// Number of item nodes.
    #[inline]
    pub fn num_items(&self) -> usize {
        self.item_offsets.len() - 1
    }

    /// Number of weighted edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.user_items.len()
    }

    /// `(items, weights)` of user `u`, items ascending.
    #[inline]
    pub fn items_of(&self, u: UserId) -> (&[ItemId], &[f32]) {
        let a = self.user_offsets[u.index()] as usize;
        let b = self.user_offsets[u.index() + 1] as usize;
        (&self.user_items[a..b], &self.user_weights[a..b])
    }

    /// `(users, weights)` of item `i`, users ascending.
    #[inline]
    pub fn users_of(&self, i: ItemId) -> (&[UserId], &[f32]) {
        let a = self.item_offsets[i.index()] as usize;
        let b = self.item_offsets[i.index() + 1] as usize;
        (&self.item_users[a..b], &self.item_weights[a..b])
    }

    /// The weight `w(u, i)` (0 if the edge is absent).
    pub fn weight(&self, u: UserId, i: ItemId) -> f64 {
        let (items, weights) = self.items_of(u);
        match items.binary_search(&i) {
            Ok(k) => weights[k] as f64,
            Err(_) => 0.0,
        }
    }

    /// Iterator over all weighted edges `(u, i, w)`.
    pub fn edges(&self) -> impl Iterator<Item = (UserId, ItemId, f32)> + '_ {
        (0..self.num_users() as u32).map(UserId).flat_map(move |u| {
            let (items, weights) = self.items_of(u);
            items.iter().zip(weights).map(move |(&i, &w)| (u, i, w))
        })
    }

    /// Binarize: keep edges with weight ≥ `threshold` at weight 1 — the
    /// reduction the paper's preprocessing applies.
    pub fn binarize(&self, threshold: f32) -> PreferenceGraph {
        let mut b = PreferenceGraphBuilder::new(self.num_users(), self.num_items());
        for (u, i, w) in self.edges() {
            if w >= threshold {
                b.add_edge(u, i).expect("existing edge in range");
            }
        }
        b.build()
    }

    /// View every weight as 1: the unweighted skeleton.
    pub fn skeleton(&self) -> PreferenceGraph {
        self.binarize(f32::MIN_POSITIVE)
    }
}

/// Builder for [`WeightedPreferenceGraph`].
///
/// Duplicate `(u, i)` pairs keep the *last* weight added.
#[derive(Clone, Debug, Default)]
pub struct WeightedPreferenceGraphBuilder {
    num_users: usize,
    num_items: usize,
    edges: Vec<(UserId, ItemId, f32)>,
}

impl WeightedPreferenceGraphBuilder {
    /// Builder over the given node counts.
    pub fn new(num_users: usize, num_items: usize) -> Self {
        WeightedPreferenceGraphBuilder { num_users, num_items, edges: Vec::new() }
    }

    /// Add edge `(u, i)` with `weight ∈ [0, 1]`. Zero-weight edges are
    /// dropped (they are indistinguishable from absence in the model).
    pub fn add_edge(&mut self, u: UserId, i: ItemId, weight: f32) -> Result<(), GraphError> {
        if u.index() >= self.num_users {
            return Err(GraphError::NodeOutOfRange {
                kind: "user",
                id: u.0,
                num_nodes: self.num_users,
            });
        }
        if i.index() >= self.num_items {
            return Err(GraphError::NodeOutOfRange {
                kind: "item",
                id: i.0,
                num_nodes: self.num_items,
            });
        }
        assert!(
            (0.0..=1.0).contains(&weight),
            "weights must be normalized to [0, 1], got {weight}"
        );
        if weight > 0.0 {
            self.edges.push((u, i, weight));
        }
        Ok(())
    }

    /// Add a raw rating in `[lo, hi]`, normalized linearly into `[0, 1]`.
    pub fn add_rating(
        &mut self,
        u: UserId,
        i: ItemId,
        rating: f64,
        lo: f64,
        hi: f64,
    ) -> Result<(), GraphError> {
        assert!(hi > lo, "rating range must be non-degenerate");
        let w = ((rating - lo) / (hi - lo)).clamp(0.0, 1.0) as f32;
        self.add_edge(u, i, w)
    }

    /// Finalize.
    pub fn build(mut self) -> WeightedPreferenceGraph {
        // Stable sort by (u, i) then keep the last weight per pair.
        self.edges.sort_by_key(|e| (e.0, e.1));
        let mut dedup: Vec<(UserId, ItemId, f32)> = Vec::with_capacity(self.edges.len());
        for e in self.edges {
            match dedup.last_mut() {
                Some(last) if last.0 == e.0 && last.1 == e.1 => last.2 = e.2,
                _ => dedup.push(e),
            }
        }

        let nu = self.num_users;
        let ni = self.num_items;
        let mut user_offsets = vec![0u32; nu + 1];
        let mut item_offsets = vec![0u32; ni + 1];
        for &(u, i, _) in &dedup {
            user_offsets[u.index() + 1] += 1;
            item_offsets[i.index() + 1] += 1;
        }
        for k in 0..nu {
            user_offsets[k + 1] += user_offsets[k];
        }
        for k in 0..ni {
            item_offsets[k + 1] += item_offsets[k];
        }
        let m = dedup.len();
        let mut user_items = vec![ItemId(0); m];
        let mut user_weights = vec![0.0f32; m];
        let mut item_users = vec![UserId(0); m];
        let mut item_weights = vec![0.0f32; m];
        let mut ucur = vec![0u32; nu];
        let mut icur = vec![0u32; ni];
        for &(u, i, w) in &dedup {
            let iu = u.index();
            let ii = i.index();
            let up = (user_offsets[iu] + ucur[iu]) as usize;
            user_items[up] = i;
            user_weights[up] = w;
            ucur[iu] += 1;
            let ip = (item_offsets[ii] + icur[ii]) as usize;
            item_users[ip] = u;
            item_weights[ip] = w;
            icur[ii] += 1;
        }
        WeightedPreferenceGraph {
            user_offsets,
            user_items,
            user_weights,
            item_offsets,
            item_users,
            item_weights,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WeightedPreferenceGraph {
        let mut b = WeightedPreferenceGraphBuilder::new(3, 3);
        b.add_edge(UserId(0), ItemId(0), 1.0).unwrap();
        b.add_edge(UserId(0), ItemId(1), 0.5).unwrap();
        b.add_edge(UserId(1), ItemId(1), 0.25).unwrap();
        b.build()
    }

    #[test]
    fn weights_readable_both_ways() {
        let g = sample();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.weight(UserId(0), ItemId(1)), 0.5);
        assert_eq!(g.weight(UserId(2), ItemId(0)), 0.0);
        let (users, weights) = g.users_of(ItemId(1));
        assert_eq!(users, &[UserId(0), UserId(1)]);
        assert_eq!(weights, &[0.5, 0.25]);
    }

    #[test]
    fn zero_weight_edges_dropped() {
        let mut b = WeightedPreferenceGraphBuilder::new(1, 2);
        b.add_edge(UserId(0), ItemId(0), 0.0).unwrap();
        b.add_edge(UserId(0), ItemId(1), 0.3).unwrap();
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn duplicate_keeps_last() {
        let mut b = WeightedPreferenceGraphBuilder::new(1, 1);
        b.add_edge(UserId(0), ItemId(0), 0.2).unwrap();
        b.add_edge(UserId(0), ItemId(0), 0.9).unwrap();
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.weight(UserId(0), ItemId(0)), 0.9f32 as f64);
    }

    #[test]
    #[should_panic(expected = "normalized")]
    fn out_of_range_weight_panics() {
        let mut b = WeightedPreferenceGraphBuilder::new(1, 1);
        let _ = b.add_edge(UserId(0), ItemId(0), 1.5);
    }

    #[test]
    fn rating_normalization() {
        let mut b = WeightedPreferenceGraphBuilder::new(1, 3);
        b.add_rating(UserId(0), ItemId(0), 5.0, 0.5, 5.0).unwrap();
        b.add_rating(UserId(0), ItemId(1), 0.5, 0.5, 5.0).unwrap(); // -> 0, dropped
        b.add_rating(UserId(0), ItemId(2), 2.75, 0.5, 5.0).unwrap();
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.weight(UserId(0), ItemId(0)), 1.0);
        assert!((g.weight(UserId(0), ItemId(2)) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn binarize_thresholds() {
        let g = sample();
        let bin = g.binarize(0.5);
        assert_eq!(bin.num_edges(), 2);
        assert!(bin.has_edge(UserId(0), ItemId(0)));
        assert!(bin.has_edge(UserId(0), ItemId(1)));
        assert!(!bin.has_edge(UserId(1), ItemId(1)));
        let skel = g.skeleton();
        assert_eq!(skel.num_edges(), 3);
    }

    #[test]
    fn edge_iterator_complete() {
        let g = sample();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        assert!(edges.contains(&(UserId(1), ItemId(1), 0.25)));
    }

    #[test]
    fn out_of_range_nodes_rejected() {
        let mut b = WeightedPreferenceGraphBuilder::new(1, 1);
        assert!(b.add_edge(UserId(1), ItemId(0), 0.5).is_err());
        assert!(b.add_edge(UserId(0), ItemId(1), 0.5).is_err());
    }
}
