//! The undirected social graph `G_s = (U, E_s)` (paper Definition 1).
//!
//! Stored as CSR: for user `u`, `neighbors[offsets[u]..offsets[u+1]]` is
//! the sorted list of `u`'s friends. Undirected edges are stored in both
//! rows. The structure is immutable after construction; use
//! [`SocialGraphBuilder`] to assemble one.

use crate::error::GraphError;
use crate::ids::UserId;

/// Immutable undirected social graph in CSR form.
///
/// Invariants (checked by the builder, relied upon everywhere):
/// * no self loops,
/// * no duplicate edges,
/// * each row of `neighbors` is strictly sorted,
/// * every undirected edge appears in both endpoint rows.
#[derive(Clone, Debug, PartialEq)]
pub struct SocialGraph {
    offsets: Vec<u32>,
    neighbors: Vec<UserId>,
}

impl SocialGraph {
    /// Number of user nodes `|U|`.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `|E_s|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of user `u` (number of immediate neighbors, `|Γ(u)|`).
    #[inline]
    pub fn degree(&self, u: UserId) -> usize {
        let i = u.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// The sorted neighbor slice `Γ(u)`.
    #[inline]
    pub fn neighbors(&self, u: UserId) -> &[UserId] {
        let i = u.index();
        &self.neighbors[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Whether the undirected edge `(u, v)` exists. `O(log deg(u))`.
    #[inline]
    pub fn has_edge(&self, u: UserId, v: UserId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all user ids `0..num_users`.
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        (0..self.num_users() as u32).map(UserId)
    }

    /// Iterator over each undirected edge exactly once, as `(u, v)` with
    /// `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (UserId, UserId)> + '_ {
        self.users().flat_map(move |u| {
            self.neighbors(u).iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// Maximum degree over all users; 0 for an empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.num_users())
            .map(|i| (self.offsets[i + 1] - self.offsets[i]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Mean degree `2|E_s| / |U|`; 0 for an empty graph.
    pub fn mean_degree(&self) -> f64 {
        if self.num_users() == 0 {
            0.0
        } else {
            2.0 * self.num_edges() as f64 / self.num_users() as f64
        }
    }

    /// Construct directly from validated CSR arrays.
    ///
    /// Internal use (builder, subgraph extraction); callers must uphold
    /// the struct invariants.
    pub(crate) fn from_csr(offsets: Vec<u32>, neighbors: Vec<UserId>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap() as usize, neighbors.len());
        SocialGraph { offsets, neighbors }
    }
}

/// Incremental builder for [`SocialGraph`].
///
/// Accepts edges in any order, with duplicates; they are deduplicated at
/// [`build`](SocialGraphBuilder::build) time. Self loops are rejected.
#[derive(Clone, Debug, Default)]
pub struct SocialGraphBuilder {
    num_users: usize,
    edges: Vec<(UserId, UserId)>,
}

impl SocialGraphBuilder {
    /// Create a builder for a graph over `num_users` users.
    pub fn new(num_users: usize) -> Self {
        SocialGraphBuilder { num_users, edges: Vec::new() }
    }

    /// Reserve space for `n` further edges.
    pub fn reserve(&mut self, n: usize) {
        self.edges.reserve(n);
    }

    /// Number of (possibly duplicate) edges added so far.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges have been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Add an undirected edge `(u, v)`.
    ///
    /// Returns an error if either endpoint is out of range or `u == v`.
    pub fn add_edge(&mut self, u: UserId, v: UserId) -> Result<(), GraphError> {
        if u.index() >= self.num_users {
            return Err(GraphError::NodeOutOfRange {
                kind: "user",
                id: u.0,
                num_nodes: self.num_users,
            });
        }
        if v.index() >= self.num_users {
            return Err(GraphError::NodeOutOfRange {
                kind: "user",
                id: v.0,
                num_nodes: self.num_users,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { id: u.0 });
        }
        // Canonicalize so dedup catches (v, u) duplicates of (u, v).
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b));
        Ok(())
    }

    /// Finalize into an immutable CSR [`SocialGraph`].
    pub fn build(mut self) -> SocialGraph {
        self.edges.sort_unstable();
        self.edges.dedup();

        let n = self.num_users;
        let mut degrees = vec![0u32; n];
        for &(a, b) in &self.edges {
            degrees[a.index()] += 1;
            degrees[b.index()] += 1;
        }

        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut acc = 0u32;
        for &d in &degrees {
            acc += d;
            offsets.push(acc);
        }

        let mut neighbors = vec![UserId(0); acc as usize];
        // Reuse `degrees` as per-row cursors.
        let mut cursor = vec![0u32; n];
        for &(a, b) in &self.edges {
            let ia = a.index();
            let ib = b.index();
            neighbors[(offsets[ia] + cursor[ia]) as usize] = b;
            cursor[ia] += 1;
            neighbors[(offsets[ib] + cursor[ib]) as usize] = a;
            cursor[ib] += 1;
        }
        // Each row receives its canonical-smaller endpoints in sorted order
        // already, but the mixture of "a rows" and "b rows" is not sorted;
        // sort each row.
        for i in 0..n {
            neighbors[offsets[i] as usize..offsets[i + 1] as usize].sort_unstable();
        }

        SocialGraph::from_csr(offsets, neighbors)
    }
}

/// Build a social graph from a slice of raw `(u, v)` pairs.
///
/// Convenience for tests and examples.
pub fn social_graph_from_edges(
    num_users: usize,
    edges: &[(u32, u32)],
) -> Result<SocialGraph, GraphError> {
    let mut b = SocialGraphBuilder::new(num_users);
    b.reserve(edges.len());
    for &(u, v) in edges {
        b.add_edge(UserId(u), UserId(v))?;
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> SocialGraph {
        // 0-1, 1-2, 0-2 triangle; 3 attached to 0; 4 isolated.
        social_graph_from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 0)]).unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = triangle_plus_pendant();
        assert_eq!(g.num_users(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(UserId(0)), 3);
        assert_eq!(g.degree(UserId(3)), 1);
        assert_eq!(g.degree(UserId(4)), 0);
        assert_eq!(g.max_degree(), 3);
        assert!((g.mean_degree() - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn neighbors_sorted_and_symmetric() {
        let g = triangle_plus_pendant();
        assert_eq!(g.neighbors(UserId(0)), &[UserId(1), UserId(2), UserId(3)]);
        for u in g.users() {
            for &v in g.neighbors(u) {
                assert!(g.has_edge(v, u), "missing reverse edge {v:?}->{u:?}");
            }
            let ns = g.neighbors(u);
            for w in ns.windows(2) {
                assert!(w[0] < w[1], "row not strictly sorted");
            }
        }
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = social_graph_from_edges(3, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(UserId(0)), 1);
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = SocialGraphBuilder::new(2);
        assert!(matches!(b.add_edge(UserId(1), UserId(1)), Err(GraphError::SelfLoop { id: 1 })));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut b = SocialGraphBuilder::new(2);
        assert!(matches!(
            b.add_edge(UserId(0), UserId(5)),
            Err(GraphError::NodeOutOfRange { id: 5, .. })
        ));
    }

    #[test]
    fn edges_iterator_unique_canonical() {
        let g = triangle_plus_pendant();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        for (u, v) in &edges {
            assert!(u < v);
        }
        let mut sorted = edges.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), edges.len());
    }

    #[test]
    fn empty_graph() {
        let g = social_graph_from_edges(0, &[]).unwrap();
        assert_eq!(g.num_users(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.mean_degree(), 0.0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn has_edge_checks() {
        let g = triangle_plus_pendant();
        assert!(g.has_edge(UserId(0), UserId(3)));
        assert!(g.has_edge(UserId(3), UserId(0)));
        assert!(!g.has_edge(UserId(3), UserId(1)));
        assert!(!g.has_edge(UserId(4), UserId(0)));
    }
}
