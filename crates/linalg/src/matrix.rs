//! Dense row-major matrices.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build element-wise from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Build from a row-major flat vector.
    ///
    /// Panics unless `data.len() == rows·cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Standard-normal random matrix (Box–Muller), seeded.
    pub fn gaussian(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = SmallRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen::<f64>();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Borrow row `i` mutably.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            for (j, &v) in row.iter().enumerate() {
                t[(j, i)] = v;
            }
        }
        t
    }

    /// Matrix product `self · other` (parallel over rows of `self`).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(n, m);
        out.data.par_chunks_mut(m).enumerate().for_each(|(i, out_row)| {
            let a_row = &self.data[i * k..(i + 1) * k];
            for (kk, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[kk * m..(kk + 1) * m];
                for (j, &b) in b_row.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        });
        out
    }

    /// Matrix–vector product `self · x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len(), "dimension mismatch");
        (0..self.rows).map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum()).collect()
    }

    /// `selfᵀ · x`.
    pub fn transpose_matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, x.len(), "dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (j, &a) in self.row(i).iter().enumerate() {
                out[j] += a * xi;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Max absolute element-wise difference to `other`.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }

    /// Maximum column L1 norm: `max_j Σ_i |A_ij|` — the LRM strategy
    /// sensitivity.
    pub fn max_column_l1(&self) -> f64 {
        let mut sums = vec![0.0f64; self.cols];
        for i in 0..self.rows {
            for (j, &v) in self.row(i).iter().enumerate() {
                sums[j] += v.abs();
            }
        }
        sums.into_iter().fold(0.0, f64::max)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn transpose_involutive() {
        let m = Matrix::gaussian(4, 7, 1);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 3)], m[(3, 2)]);
    }

    #[test]
    fn matmul_hand_checked() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_vec(2, 2, vec![19.0, 22.0, 43.0, 50.0]));
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::gaussian(5, 5, 2);
        let i = Matrix::identity(5);
        assert!(a.matmul(&i).max_abs_diff(&a) < 1e-12);
        assert!(i.matmul(&a).max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn matvec_consistent_with_matmul() {
        let a = Matrix::gaussian(4, 6, 3);
        let x: Vec<f64> = (0..6).map(|i| i as f64 * 0.5 - 1.0).collect();
        let xm = Matrix::from_vec(6, 1, x.clone());
        let via_matmul = a.matmul(&xm);
        let via_matvec = a.matvec(&x);
        for i in 0..4 {
            assert!((via_matmul[(i, 0)] - via_matvec[i]).abs() < 1e-12);
        }
        // transpose_matvec consistency.
        let y: Vec<f64> = (0..4).map(|i| 1.0 - i as f64).collect();
        let t1 = a.transpose().matvec(&y);
        let t2 = a.transpose_matvec(&y);
        for j in 0..6 {
            assert!((t1[j] - t2[j]).abs() < 1e-12);
        }
    }

    #[test]
    fn norms() {
        let m = Matrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        let m = Matrix::from_vec(2, 2, vec![1.0, -2.0, 3.0, 4.0]);
        assert_eq!(m.max_column_l1(), 6.0);
    }

    #[test]
    fn gaussian_is_seeded_and_standardish() {
        let a = Matrix::gaussian(50, 50, 9);
        let b = Matrix::gaussian(50, 50, 9);
        assert_eq!(a, b);
        let mean: f64 = (0..50).flat_map(|i| a.row(i)).sum::<f64>() / 2500.0;
        assert!(mean.abs() < 0.1, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
