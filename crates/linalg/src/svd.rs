//! Truncated randomized SVD (Halko, Martinsson & Tropp 2011).
//!
//! 1. Sketch the range: `Y = A·Ω` with Gaussian `Ω`, orthonormalise
//!    (`Q`), optionally with power iterations for faster spectral decay.
//! 2. Project: `B = Qᵀ·A` (small: `l × n`).
//! 3. Exact eigendecomposition of the small Gram matrix `G = B·Bᵀ`
//!    with a cyclic Jacobi sweep, then recover singular triples.

use crate::matrix::Matrix;
use crate::qr::thin_qr;

/// A (possibly truncated) singular value decomposition `A ≈ U·Σ·Vᵀ`.
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left singular vectors, `m × r`.
    pub u: Matrix,
    /// Singular values, descending, length `r`.
    pub singular_values: Vec<f64>,
    /// Right singular vectors transposed, `r × n`.
    pub vt: Matrix,
}

impl Svd {
    /// Reconstruct `U·Σ·Vᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        let r = self.singular_values.len();
        let mut us = Matrix::zeros(self.u.rows(), r);
        for i in 0..self.u.rows() {
            for j in 0..r {
                us[(i, j)] = self.u[(i, j)] * self.singular_values[j];
            }
        }
        us.matmul(&self.vt)
    }

    /// The number of retained singular triples.
    pub fn rank(&self) -> usize {
        self.singular_values.len()
    }

    /// Numerical rank: singular values above `tol · σ_max`.
    pub fn numerical_rank(&self, tol: f64) -> usize {
        let smax = self.singular_values.first().copied().unwrap_or(0.0);
        self.singular_values.iter().filter(|&&s| s > tol * smax).count()
    }
}

/// Eigendecomposition of a symmetric matrix by cyclic Jacobi rotations.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvalues descending and
/// `eigenvectors` column `j` corresponding to eigenvalue `j`.
pub fn symmetric_jacobi_eigen(g: &Matrix) -> (Vec<f64>, Matrix) {
    assert_eq!(g.rows(), g.cols(), "matrix must be square");
    let n = g.rows();
    let mut a = g.clone();
    let mut v = Matrix::identity(n);

    let off = |a: &Matrix| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s += a[(i, j)] * a[(i, j)];
                }
            }
        }
        s.sqrt()
    };
    let scale = g.frobenius_norm().max(1e-300);

    for _sweep in 0..64 {
        if off(&a) <= 1e-13 * scale {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[(p, q)];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = a[(p, p)];
                let aqq = a[(q, q)];
                let tau = (aqq - app) / (2.0 * apq);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // A <- JᵀAJ applied to rows/cols p, q.
                for k in 0..n {
                    let akp = a[(k, p)];
                    let akq = a[(k, q)];
                    a[(k, p)] = c * akp - s * akq;
                    a[(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[(p, k)];
                    let aqk = a[(q, k)];
                    a[(p, k)] = c * apk - s * aqk;
                    a[(q, k)] = s * apk + c * aqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Extract and sort descending.
    let mut order: Vec<usize> = (0..n).collect();
    let eig: Vec<f64> = (0..n).map(|i| a[(i, i)]).collect();
    order.sort_by(|&i, &j| eig[j].partial_cmp(&eig[i]).unwrap());
    let eigenvalues: Vec<f64> = order.iter().map(|&i| eig[i]).collect();
    let mut vecs = Matrix::zeros(n, n);
    for (new_j, &old_j) in order.iter().enumerate() {
        for i in 0..n {
            vecs[(i, new_j)] = v[(i, old_j)];
        }
    }
    (eigenvalues, vecs)
}

/// Truncated randomized SVD of `a` keeping `rank` triples.
///
/// `oversample` extra sketch columns (≥ 5 recommended) and `power_iters`
/// subspace iterations (1–2 suffice for slowly decaying spectra) control
/// accuracy; `seed` controls the Gaussian sketch.
pub fn randomized_svd(
    a: &Matrix,
    rank: usize,
    oversample: usize,
    power_iters: usize,
    seed: u64,
) -> Svd {
    let m = a.rows();
    let n = a.cols();
    assert!(rank >= 1, "rank must be at least 1");
    let l = (rank + oversample).min(n).min(m);

    // Range finder.
    let omega = Matrix::gaussian(n, l, seed);
    let mut q = {
        let y = a.matmul(&omega);
        thin_qr(&y).0
    };
    let at = a.transpose();
    for _ in 0..power_iters {
        let z = at.matmul(&q);
        let qz = thin_qr(&z).0;
        let y = a.matmul(&qz);
        q = thin_qr(&y).0;
    }

    // Small problem: B = Qᵀ A (l × n), G = B Bᵀ (l × l).
    let b = q.transpose().matmul(a);
    let g = b.matmul(&b.transpose());
    let (eig, w) = symmetric_jacobi_eigen(&g);

    let keep = rank.min(l);
    let mut singular_values = Vec::with_capacity(keep);
    let mut u = Matrix::zeros(m, keep);
    let mut vt = Matrix::zeros(keep, n);

    // U = Q·W, v_j = Bᵀ w_j / σ_j.
    let qw = q.matmul(&w);
    for j in 0..keep {
        let sigma = eig[j].max(0.0).sqrt();
        singular_values.push(sigma);
        for i in 0..m {
            u[(i, j)] = qw[(i, j)];
        }
        if sigma > 1e-300 {
            let wj = w.col(j);
            let vj = b.transpose_matvec(&wj);
            let inv = 1.0 / sigma;
            for (k, &v) in vj.iter().enumerate() {
                vt[(j, k)] = v * inv;
            }
        }
    }

    Svd { u, singular_values, vt }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Low-rank test matrix: sum of `r` outer products with decaying
    /// coefficients.
    fn low_rank_matrix(m: usize, n: usize, r: usize, seed: u64) -> Matrix {
        let u = Matrix::gaussian(m, r, seed);
        let v = Matrix::gaussian(n, r, seed + 1);
        let mut a = Matrix::zeros(m, n);
        for k in 0..r {
            let coef = 10.0 / (k + 1) as f64;
            for i in 0..m {
                for j in 0..n {
                    a[(i, j)] += coef * u[(i, k)] * v[(j, k)];
                }
            }
        }
        a
    }

    #[test]
    fn jacobi_eigen_diagonal() {
        let d = Matrix::from_fn(3, 3, |i, j| if i == j { (3 - i) as f64 } else { 0.0 });
        let (eig, v) = symmetric_jacobi_eigen(&d);
        assert!((eig[0] - 3.0).abs() < 1e-12);
        assert!((eig[2] - 1.0).abs() < 1e-12);
        // Eigenvectors are (signed) unit basis vectors.
        assert!((v.col(0)[0].abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jacobi_eigen_known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let g = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let (eig, v) = symmetric_jacobi_eigen(&g);
        assert!((eig[0] - 3.0).abs() < 1e-12);
        assert!((eig[1] - 1.0).abs() < 1e-12);
        // Check A v = λ v for the top eigenpair.
        let v0 = v.col(0);
        let av = g.matvec(&v0);
        for i in 0..2 {
            assert!((av[i] - 3.0 * v0[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn jacobi_reconstructs_random_symmetric() {
        let b = Matrix::gaussian(8, 8, 7);
        let g = b.matmul(&b.transpose()); // SPD
        let (eig, v) = symmetric_jacobi_eigen(&g);
        // V diag(eig) Vᵀ == G.
        let mut vd = Matrix::zeros(8, 8);
        for i in 0..8 {
            for j in 0..8 {
                vd[(i, j)] = v[(i, j)] * eig[j];
            }
        }
        let rec = vd.matmul(&v.transpose());
        assert!(rec.max_abs_diff(&g) < 1e-8, "diff {}", rec.max_abs_diff(&g));
        // Descending, non-negative for SPD.
        for w in eig.windows(2) {
            assert!(w[0] >= w[1] - 1e-10);
        }
        assert!(eig[7] > -1e-8);
    }

    #[test]
    fn randomized_svd_recovers_low_rank() {
        let a = low_rank_matrix(40, 30, 5, 2);
        let svd = randomized_svd(&a, 5, 8, 2, 0);
        let rec = svd.reconstruct();
        let rel = rec.max_abs_diff(&a) / a.frobenius_norm();
        assert!(rel < 1e-8, "relative error {rel}");
        assert_eq!(svd.rank(), 5);
        // Singular values descending.
        for w in svd.singular_values.windows(2) {
            assert!(w[0] >= w[1] - 1e-10);
        }
    }

    #[test]
    fn truncation_error_bounded_by_tail() {
        let a = low_rank_matrix(30, 30, 8, 5);
        let full = randomized_svd(&a, 8, 8, 2, 0);
        let truncated = randomized_svd(&a, 4, 8, 2, 0);
        let err = truncated.reconstruct().max_abs_diff(&a);
        // Error should be on the order of the dropped singular values.
        let sigma5 = full.singular_values[4];
        assert!(err < 3.0 * sigma5 + 1e-9, "err {err} vs sigma5 {sigma5}");
        assert!(err > 1e-12, "rank-4 cannot be exact for a rank-8 matrix");
    }

    #[test]
    fn numerical_rank_detection() {
        let a = low_rank_matrix(25, 25, 3, 9);
        let svd = randomized_svd(&a, 10, 6, 2, 1);
        assert_eq!(svd.numerical_rank(1e-8), 3);
    }

    #[test]
    fn u_and_v_orthonormal() {
        let a = low_rank_matrix(20, 15, 4, 3);
        let svd = randomized_svd(&a, 4, 6, 2, 0);
        let utu = svd.u.transpose().matmul(&svd.u);
        assert!(utu.max_abs_diff(&Matrix::identity(4)) < 1e-8);
        let vvt = svd.vt.matmul(&svd.vt.transpose());
        assert!(vvt.max_abs_diff(&Matrix::identity(4)) < 1e-8);
    }
}
