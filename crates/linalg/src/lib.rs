//! Minimal dense linear algebra for the Low-Rank Mechanism comparator.
//!
//! The LRM of Yuan et al. (PVLDB 2012) decomposes a workload matrix
//! `W ≈ B·L` and answers the workload through the lower-sensitivity
//! strategy `L`. The paper adapts it to social recommendation (§6.4)
//! using a decomposition of rank ≈ rank(W). We implement the numerical
//! substrate from scratch:
//!
//! * [`Matrix`] — dense row-major matrices with (rayon-) parallel
//!   multiplication,
//! * [`qr`] — thin QR via modified Gram–Schmidt,
//! * [`svd`] — truncated randomized SVD (Halko-style range finder plus
//!   a cyclic-Jacobi eigensolver on the small Gram matrix).

#![warn(missing_docs)]

pub mod matrix;
pub mod qr;
pub mod svd;

pub use matrix::Matrix;
pub use qr::thin_qr;
pub use svd::{randomized_svd, symmetric_jacobi_eigen, Svd};
