//! Thin QR factorization by modified Gram–Schmidt.

use crate::matrix::Matrix;

/// Thin QR of an `m × n` matrix (`m ≥ n` not required, but columns
/// beyond the row count are necessarily dependent): returns `(Q, R)`
/// with `Q` `m × n` having orthonormal (or zero, if rank deficient)
/// columns and `R` `n × n` upper triangular, such that `A = Q·R`.
///
/// Columns whose residual norm falls below `tol · ‖A‖_F` are treated as
/// dependent: their `Q` column is zero and `R[j][j] = 0`.
pub fn thin_qr(a: &Matrix) -> (Matrix, Matrix) {
    let m = a.rows();
    let n = a.cols();
    let tol = 1e-12 * a.frobenius_norm().max(1.0);

    // Work column-major for locality of the column operations.
    let mut cols: Vec<Vec<f64>> = (0..n).map(|j| a.col(j)).collect();
    let mut r = Matrix::zeros(n, n);

    for j in 0..n {
        // Orthogonalize col j against previous q's (MGS: already done
        // progressively below); compute norm.
        let norm = cols[j].iter().map(|v| v * v).sum::<f64>().sqrt();
        r[(j, j)] = if norm > tol { norm } else { 0.0 };
        if r[(j, j)] > 0.0 {
            let inv = 1.0 / norm;
            cols[j].iter_mut().for_each(|v| *v *= inv);
        } else {
            cols[j].iter_mut().for_each(|v| *v = 0.0);
        }
        // Project the remaining columns off q_j.
        let (head, tail) = cols.split_at_mut(j + 1);
        let qj = &head[j];
        for (offset, ck) in tail.iter_mut().enumerate() {
            let k = j + 1 + offset;
            let dot: f64 = qj.iter().zip(ck.iter()).map(|(a, b)| a * b).sum();
            r[(j, k)] = dot;
            for (q, c) in qj.iter().zip(ck.iter_mut()) {
                *c -= dot * q;
            }
        }
    }

    let mut q = Matrix::zeros(m, n);
    for (j, cj) in cols.iter().enumerate() {
        for i in 0..m {
            q[(i, j)] = cj[i];
        }
    }
    (q, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_orthonormal_cols(q: &Matrix, tol: f64) {
        for j in 0..q.cols() {
            let cj = q.col(j);
            let njj: f64 = cj.iter().map(|v| v * v).sum();
            if njj < 0.5 {
                continue; // zero column from rank deficiency
            }
            assert!((njj - 1.0).abs() < tol, "col {j} norm² {njj}");
            for k in (j + 1)..q.cols() {
                let ck = q.col(k);
                let dot: f64 = cj.iter().zip(&ck).map(|(a, b)| a * b).sum();
                assert!(dot.abs() < tol, "cols {j},{k} dot {dot}");
            }
        }
    }

    #[test]
    fn reconstructs_random_matrix() {
        let a = Matrix::gaussian(10, 6, 4);
        let (q, r) = thin_qr(&a);
        assert_orthonormal_cols(&q, 1e-10);
        let qr = q.matmul(&r);
        assert!(qr.max_abs_diff(&a) < 1e-10);
        // R upper triangular.
        for i in 0..6 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn handles_rank_deficiency() {
        // Third column = first + second.
        let a = Matrix::from_fn(5, 3, |i, j| match j {
            0 => (i + 1) as f64,
            1 => (2 * i) as f64 + 1.0,
            _ => (i + 1) as f64 + (2 * i) as f64 + 1.0,
        });
        let (q, r) = thin_qr(&a);
        assert_eq!(r[(2, 2)], 0.0, "dependent column must have zero pivot");
        assert!(q.matmul(&r).max_abs_diff(&a) < 1e-9);
        assert_orthonormal_cols(&q, 1e-9);
    }

    #[test]
    fn identity_factors_trivially() {
        let i5 = Matrix::identity(5);
        let (q, r) = thin_qr(&i5);
        assert!(q.max_abs_diff(&i5) < 1e-12);
        assert!(r.max_abs_diff(&i5) < 1e-12);
    }

    #[test]
    fn zero_matrix() {
        let z = Matrix::zeros(4, 3);
        let (q, r) = thin_qr(&z);
        assert_eq!(q.frobenius_norm(), 0.0);
        assert_eq!(r.frobenius_norm(), 0.0);
    }
}
