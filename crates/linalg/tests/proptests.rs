//! Property-based tests for the dense linear algebra.

use proptest::prelude::*;
use socialrec_linalg::{randomized_svd, symmetric_jacobi_eigen, thin_qr, Matrix};

fn small_matrix() -> impl Strategy<Value = Matrix> {
    (2usize..10, 2usize..10, 0u64..1000).prop_map(|(m, n, seed)| Matrix::gaussian(m, n, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_associative(seed in 0u64..500) {
        let a = Matrix::gaussian(5, 4, seed);
        let b = Matrix::gaussian(4, 6, seed + 1);
        let c = Matrix::gaussian(6, 3, seed + 2);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-9);
    }

    #[test]
    fn transpose_reverses_product(seed in 0u64..500) {
        let a = Matrix::gaussian(4, 6, seed);
        let b = Matrix::gaussian(6, 5, seed + 9);
        let ab_t = a.matmul(&b).transpose();
        let bt_at = b.transpose().matmul(&a.transpose());
        prop_assert!(ab_t.max_abs_diff(&bt_at) < 1e-9);
    }

    #[test]
    fn qr_reconstructs(a in small_matrix()) {
        let (q, r) = thin_qr(&a);
        let qr = q.matmul(&r);
        prop_assert!(qr.max_abs_diff(&a) < 1e-8, "diff {}", qr.max_abs_diff(&a));
        // Q columns orthonormal (or zero).
        let qtq = q.transpose().matmul(&q);
        for i in 0..qtq.rows() {
            for j in 0..qtq.cols() {
                let expected = if i == j {
                    let v = qtq[(i, j)];
                    prop_assert!((v - 1.0).abs() < 1e-8 || v.abs() < 1e-8);
                    continue;
                } else {
                    0.0
                };
                prop_assert!((qtq[(i, j)] - expected).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn jacobi_eigen_reconstructs_spd(seed in 0u64..500, n in 2usize..9) {
        let b = Matrix::gaussian(n, n, seed);
        let g = b.matmul(&b.transpose());
        let (eig, v) = symmetric_jacobi_eigen(&g);
        // Eigenvalues descending and non-negative (SPD).
        for w in eig.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
        prop_assert!(eig[n - 1] > -1e-8);
        // Reconstruction.
        let mut vd = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                vd[(i, j)] = v[(i, j)] * eig[j];
            }
        }
        let rec = vd.matmul(&v.transpose());
        prop_assert!(rec.max_abs_diff(&g) < 1e-7 * (1.0 + g.frobenius_norm()));
    }

    #[test]
    fn svd_full_rank_is_exact(seed in 0u64..300, m in 3usize..8, n in 3usize..8) {
        let a = Matrix::gaussian(m, n, seed);
        let r = m.min(n);
        let svd = randomized_svd(&a, r, 6, 2, seed + 1);
        let rec = svd.reconstruct();
        prop_assert!(
            rec.max_abs_diff(&a) < 1e-7 * (1.0 + a.frobenius_norm()),
            "diff {}",
            rec.max_abs_diff(&a)
        );
    }

    #[test]
    fn svd_truncation_error_roughly_monotone(seed in 0u64..200) {
        // Randomized SVD is only probabilistically near-optimal, so a
        // higher rank can occasionally reconstruct slightly worse in
        // max-abs terms; require monotonicity of the *Frobenius* error
        // up to a small sketching slack, and exactness at full rank.
        let a = Matrix::gaussian(10, 8, seed);
        let fro = |m: &Matrix| -> f64 {
            let mut d = 0.0;
            for i in 0..m.rows() {
                for j in 0..m.cols() {
                    d += (m[(i, j)] - a[(i, j)]).powi(2);
                }
            }
            d.sqrt()
        };
        let mut prev_err = f64::INFINITY;
        for r in [2usize, 4, 6, 8] {
            let svd = randomized_svd(&a, r, 8, 3, 0);
            let err = fro(&svd.reconstruct());
            prop_assert!(
                err <= prev_err * 1.10 + 1e-7,
                "rank {r}: {err} far above {prev_err}"
            );
            prev_err = prev_err.min(err);
        }
        prop_assert!(prev_err < 1e-6, "full rank must be exact, err {prev_err}");
    }

    #[test]
    fn max_column_l1_bounds_matvec(seed in 0u64..300) {
        // For any one-hot x, ||A x||_1 <= max column L1 norm — the LRM
        // sensitivity argument.
        let a = Matrix::gaussian(6, 7, seed);
        let bound = a.max_column_l1();
        for j in 0..7 {
            let mut x = vec![0.0; 7];
            x[j] = 1.0;
            let y = a.matvec(&x);
            let l1: f64 = y.iter().map(|v| v.abs()).sum();
            prop_assert!(l1 <= bound + 1e-9);
        }
    }
}
