//! `SOCIALREC_SIMD` ISA matrix for the vectorized kernels.
//!
//! The dispatch tier is resolved once per process (an `AtomicU8` latch
//! in `socialrec_simd`), so one process can only ever observe one
//! ambient tier. To exercise the DESIGN.md §6d bit-identity contract on
//! every tier the hardware offers — not just the one auto-dispatch
//! picks — the matrix test re-runs this test binary as a child process
//! per `SOCIALREC_SIMD` value in {scalar, sse2, avx2}, skipping (and
//! logging) tiers the CPU cannot run. Each child runs the full
//! equivalence suite: the blocked utility kernel vs its scalar
//! reference, CN/AA similarity sets vs their scatter references, top-N
//! selection vs the reference heap, and end-to-end serving vs the
//! framework walk.

use socialrec_community::{ClusteringStrategy, LouvainStrategy};
use socialrec_core::private::framework::release_noisy_cluster_averages;
use socialrec_core::private::ClusterFramework;
use socialrec_core::{top_n_items, top_n_items_reference, RecommenderInputs, TopNRecommender};
use socialrec_datasets::lastfm_like_scaled;
use socialrec_dp::Epsilon;
use socialrec_graph::UserId;
use socialrec_serve::{kernel, RecommendationServer, SimMassIndex};
use socialrec_simd::Isa;
use socialrec_similarity::{
    AdamicAdar, CommonNeighbors, Measure, SimScratch, Similarity, SimilarityMatrix,
};

fn run_equivalence_checks() {
    // When the parent set an override, the resolved tier must be
    // exactly the requested one (the parent only spawns available
    // tiers, so no clamping can have happened).
    if let Ok(want) = std::env::var(socialrec_simd::ENV_VAR) {
        assert_eq!(
            socialrec_simd::active().name(),
            want,
            "child resolved a different tier than SOCIALREC_SIMD requested"
        );
    }
    let ds = lastfm_like_scaled(0.04, 21);
    let n = ds.social.num_users();

    // CN and AA similarity sets: vectorized intersection formulation vs
    // the retained scatter references, bit for bit, every user.
    let mut scratch = SimScratch::new(n);
    let (mut fast, mut slow) = (Vec::new(), Vec::new());
    for u in (0..n as u32).map(UserId) {
        CommonNeighbors.similarity_set(&ds.social, u, &mut scratch, &mut fast);
        CommonNeighbors.similarity_set_scatter(&ds.social, u, &mut scratch, &mut slow);
        assert_eq!(fast.len(), slow.len(), "CN row {u:?} length diverged");
        for (a, b) in fast.iter().zip(&slow) {
            assert_eq!(a.0, b.0, "CN row {u:?} neighbor diverged");
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "CN row {u:?} score bits diverged");
        }
        AdamicAdar.similarity_set(&ds.social, u, &mut scratch, &mut fast);
        AdamicAdar.similarity_set_scatter(&ds.social, u, &mut scratch, &mut slow);
        assert_eq!(fast.len(), slow.len(), "AA row {u:?} length diverged");
        for (a, b) in fast.iter().zip(&slow) {
            assert_eq!(a.0, b.0, "AA row {u:?} neighbor diverged");
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "AA row {u:?} score bits diverged");
        }
    }

    // Blocked utility kernel (SIMD axpy) vs the fully scalar per-user
    // reference, across ragged tiles and user blocks.
    let sim = SimilarityMatrix::build(&ds.social, &Measure::CommonNeighbors);
    let partition = LouvainStrategy { restarts: 2, seed: 21, refine: true }.cluster(&ds.social);
    let index = SimMassIndex::build(&sim, &partition);
    let averages = release_noisy_cluster_averages(&partition, &ds.prefs, Epsilon::Finite(0.5), 7);
    let ni = averages.num_items();
    let users: Vec<UserId> = (0..n as u32).step_by(3).map(UserId).collect();
    let mut reference = Vec::new();
    let mut blocked = Vec::new();
    for tile in [1, 13, kernel::ITEM_TILE, ni + 1] {
        for block in users.chunks(kernel::USER_BLOCK) {
            kernel::utilities_block_tiled(&averages, &index, block, tile, &mut blocked);
            for (k, &u) in block.iter().enumerate() {
                kernel::utilities_into_reference(&averages, &index, u, &mut reference);
                let got = &blocked[k * ni..(k + 1) * ni];
                for (i, (a, b)) in got.iter().zip(&reference).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "tile={tile} user={u:?} item={i}: blocked kernel diverged"
                    );
                }
            }
        }
    }

    // Top-N selection (SIMD reject-path scan) vs the reference heap
    // over real utility rows, including the NaN-free negative regime.
    for &u in users.iter().take(64) {
        kernel::utilities_into_reference(&averages, &index, u, &mut reference);
        for top in [1, 10, ni] {
            let fast = top_n_items(&reference, top);
            let slow = top_n_items_reference(&reference, top);
            assert_eq!(fast.len(), slow.len(), "top-{top} for {u:?} diverged in length");
            for ((fi, fu), (si, su)) in fast.iter().zip(&slow) {
                assert_eq!(fi, si, "top-{top} for {u:?} diverged in items");
                assert_eq!(fu.to_bits(), su.to_bits(), "top-{top} for {u:?} diverged in bits");
            }
        }
    }

    // End-to-end: the serving engine vs the framework's per-user walk.
    let fw = ClusterFramework::new(&partition, Epsilon::Finite(0.5));
    let inputs = RecommenderInputs { prefs: &ds.prefs, sim: &sim };
    let sample: Vec<UserId> = (0..n as u32).step_by(17).map(UserId).collect();
    let want = fw.recommend(&inputs, &sample, 10, 7);
    let server = RecommendationServer::new(&partition, &sim, Epsilon::Finite(0.5));
    let got = server.recommend_batch(&inputs, &sample, 10, 7);
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(g.user, w.user);
        assert_eq!(g.items.len(), w.items.len(), "list shape diverged for {:?}", g.user);
        for ((gi, gu), (wi, wu)) in g.items.iter().zip(&w.items) {
            assert_eq!(gi, wi, "served item diverged for {:?}", g.user);
            assert_eq!(gu.to_bits(), wu.to_bits(), "served bits diverged for {:?}", g.user);
        }
    }
}

/// The checks under whatever tier is ambient (auto-dispatch in default
/// CI, the overridden tier when run as a matrix child).
#[test]
fn equivalence_under_ambient_isa() {
    eprintln!(
        "simd_matrix: detected {}, active {}",
        socialrec_simd::detected().name(),
        socialrec_simd::active().name()
    );
    run_equivalence_checks();
}

/// Re-run `equivalence_under_ambient_isa` in a child process per
/// `SOCIALREC_SIMD` tier the CPU can actually run, logging the skip
/// reason for the rest. The `--exact` filter keeps the child from
/// recursing into this test.
#[test]
fn equivalence_matrix_across_isa_tiers() {
    let exe = std::env::current_exe().expect("test binary path");
    for isa in Isa::ALL {
        if !isa.is_available() {
            eprintln!(
                "simd_matrix: skipping SOCIALREC_SIMD={} — not available on this CPU \
                 (detected {})",
                isa.name(),
                socialrec_simd::detected().name()
            );
            continue;
        }
        let status = std::process::Command::new(&exe)
            .args(["--exact", "equivalence_under_ambient_isa"])
            .env(socialrec_simd::ENV_VAR, isa.name())
            .status()
            .expect("spawn matrix child");
        assert!(status.success(), "equivalence failed under SOCIALREC_SIMD={}", isa.name());
    }
}
