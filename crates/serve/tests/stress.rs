//! Concurrent-serving stress: N threads issue mixed `recommend_one` /
//! `recommend_batch` traffic across a live generation change (a seed
//! bump mid-run) and every answer is checked bitwise against the
//! per-seed `ClusterFramework` reference. A bit-match proves the
//! response was computed wholly from its own seed's release — a
//! mixed-generation response cannot reproduce either reference — and a
//! returned answer per issued query proves nothing was dropped. After
//! the run, per-shard counters must conserve (every issued query
//! counted exactly once) and the privacy ledger must show exactly one ε
//! spend per generation, however many threads and shards raced.
//!
//! Like `thread_matrix.rs`, the scheduler width is latched per process,
//! so the matrix test re-runs this binary as a child per
//! `SOCIALREC_THREADS ∈ {1, 2, 8}`.

use socialrec_community::{ClusteringStrategy, LouvainStrategy};
use socialrec_core::private::framework::ClusterFramework;
use socialrec_core::{RecommenderInputs, TopN, TopNRecommender};
use socialrec_datasets::lastfm_like_scaled;
use socialrec_dp::Epsilon;
use socialrec_graph::UserId;
use socialrec_serve::ShardedServer;
use socialrec_similarity::{Measure, SimilarityMatrix};

const THREADS: u32 = 8;
const ITERS: u32 = 30;
const SEED_A: u64 = 5;
const SEED_B: u64 = 6;
const TOP_N: usize = 8;

fn assert_bits_match(got: &TopN, want: &TopN, seed: u64) {
    assert_eq!(got.user, want.user);
    assert_eq!(got.items.len(), want.items.len(), "user {:?} seed {seed}", got.user);
    for ((gi, gu), (wi, wu)) in got.items.iter().zip(&want.items) {
        assert_eq!(gi, wi, "item differs for {:?} under seed {seed}", got.user);
        assert_eq!(
            gu.to_bits(),
            wu.to_bits(),
            "utility bits differ for {:?} under seed {seed} — response mixed generations?",
            got.user
        );
    }
}

fn run_stress() {
    // Enable observability so the release kernel writes ledger records
    // (the ε-spend assertions need them).
    socialrec_obs::enable();

    let ds = lastfm_like_scaled(0.05, 33);
    let sim = SimilarityMatrix::build(&ds.social, &Measure::CommonNeighbors);
    let inputs = RecommenderInputs { prefs: &ds.prefs, sim: &sim };
    let partition = LouvainStrategy::default().cluster(&ds.social);
    let epsilon = Epsilon::Finite(0.4);
    let n_users = ds.social.num_users() as u32;
    let all: Vec<UserId> = (0..n_users).map(UserId).collect();

    // Per-seed references (these also write ledger records; they stay
    // unstamped, so the per-generation stamp counts below are exact).
    let fw = ClusterFramework::new(&partition, epsilon);
    let want_a = fw.recommend(&inputs, &all, TOP_N, SEED_A);
    let want_b = fw.recommend(&inputs, &all, TOP_N, SEED_B);

    let daemon = ShardedServer::new(&partition, &sim, epsilon, 4);
    let gen_a = daemon.generation_for(SEED_A);
    let gen_b = daemon.generation_for(SEED_B);

    // Prime generation A so the mid-run swap is the only in-flight
    // build while traffic runs.
    let primed = daemon.recommend_one(&inputs, UserId(0), TOP_N, SEED_A);
    assert_bits_match(&primed, &want_a[0], SEED_A);

    // Mixed single/batch traffic; the seed bump halfway through each
    // thread's loop is the hot swap under load.
    let issued: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let (daemon, inputs, all, want_a, want_b) =
                    (&daemon, &inputs, &all, &want_a, &want_b);
                s.spawn(move || {
                    let mut issued = 0u64;
                    for i in 0..ITERS {
                        let (seed, want) =
                            if i < ITERS / 2 { (SEED_A, want_a) } else { (SEED_B, want_b) };
                        if (i + t) % 3 == 0 {
                            // A small scattered batch.
                            let lo = ((t * 17 + i * 5) % n_users) as usize;
                            let hi = (lo + 5).min(n_users as usize);
                            let users = &all[lo..hi];
                            let got = daemon.recommend_batch(inputs, users, TOP_N, seed);
                            assert_eq!(got.len(), users.len(), "dropped batch rows");
                            for g in &got {
                                assert_bits_match(g, &want[g.user.index()], seed);
                            }
                            issued += users.len() as u64;
                        } else {
                            let u = UserId((t * 13 + i * 7) % n_users);
                            let got = daemon.recommend_one(inputs, u, TOP_N, seed);
                            assert_bits_match(&got, &want[u.index()], seed);
                            issued += 1;
                        }
                    }
                    issued
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("stress worker panicked")).sum()
    });

    // Exactly one release build per generation, daemon-wide.
    assert_eq!(daemon.exchange().epoch(), 2, "one build per generation");
    assert_eq!(daemon.exchange().retained(), vec![gen_a, gen_b]);

    // A final quiescent full sweep on the new generation: still
    // bit-identical, and it deterministically leaves every shard's
    // epoch cell on the post-swap generation (mid-run, a straggling
    // seed-A query may legitimately be the last traffic a shard sees).
    let sweep = daemon.recommend_batch(&inputs, &all, TOP_N, SEED_B);
    for g in &sweep {
        assert_bits_match(g, &want_b[g.user.index()], SEED_B);
    }

    // Counter conservation: every issued query (plus the priming single
    // and the final sweep) is counted exactly once across the shards.
    let snap = daemon.registry().snapshot();
    let counted: u64 =
        snap.counters.iter().filter(|(n, _)| n.ends_with(".queries")).map(|(_, v)| *v).sum();
    assert_eq!(counted, issued + 1 + n_users as u64, "per-shard query counters must conserve");
    let admissions: u64 =
        snap.counters.iter().filter(|(n, _)| n.ends_with(".admissions")).map(|(_, v)| *v).sum();
    assert!(admissions >= 1, "coalescing admission must have run");

    // Ledger: exactly one ε spend stamped per generation.
    let ledger = socialrec_obs::PrivacyLedger::global().snapshot();
    for (gen, label) in [(gen_a, "A"), (gen_b, "B")] {
        let spends = ledger.records.iter().filter(|r| r.generation == Some(gen)).count();
        assert_eq!(spends, 1, "generation {label} must spend ε exactly once");
    }
    // Every shard ends on the post-swap generation (all shards saw
    // seed-B traffic).
    assert_eq!(daemon.shard_generations(), vec![Some(gen_b); daemon.num_shards()]);
}

/// The stress run under whatever `SOCIALREC_THREADS` is ambient.
#[test]
fn stress_under_ambient_threads() {
    run_stress();
}

/// Re-run the stress test in a child process per scheduler width.
#[test]
fn stress_matrix_across_thread_counts() {
    let exe = std::env::current_exe().expect("test binary path");
    for threads in ["1", "2", "8"] {
        let status = std::process::Command::new(&exe)
            .args(["--exact", "stress_under_ambient_threads"])
            .env("SOCIALREC_THREADS", threads)
            .status()
            .expect("spawn matrix child");
        assert!(status.success(), "stress failed under SOCIALREC_THREADS={threads}");
    }
}
