//! Scheduler-thread-count matrix for the new kernels.
//!
//! `SOCIALREC_THREADS` is latched by a `OnceLock` at the first parallel
//! call, so one process can only ever observe one thread count. To
//! exercise the bit-identity contracts off the 1-core CI happy path,
//! the matrix test re-runs this test binary as a child process per
//! thread count in {1, 2, 8}, each child running the full equivalence
//! suite (blocked utility kernel, two-pass `SimilarityMatrix` build,
//! two-pass `SimMassIndex` build) under that scheduler width.

use socialrec_community::{ClusteringStrategy, LouvainStrategy};
use socialrec_core::private::framework::release_noisy_cluster_averages;
use socialrec_datasets::lastfm_like_scaled;
use socialrec_dp::Epsilon;
use socialrec_graph::UserId;
use socialrec_serve::{kernel, SimMassIndex};
use socialrec_similarity::{Measure, SimilarityMatrix};

fn run_equivalence_checks() {
    let ds = lastfm_like_scaled(0.04, 21);
    let n = ds.social.num_users();

    // Two-pass parallel SimilarityMatrix assembly vs the sequential
    // reference: offsets, neighbor order, and score bits.
    let sim = SimilarityMatrix::build(&ds.social, &Measure::CommonNeighbors);
    let sim_ref = SimilarityMatrix::build_sequential(&ds.social, &Measure::CommonNeighbors);
    assert_eq!(sim.num_users(), sim_ref.num_users());
    assert_eq!(sim.num_entries(), sim_ref.num_entries());
    for u in 0..n as u32 {
        let (va, sa) = sim.row(UserId(u));
        let (vb, sb) = sim_ref.row(UserId(u));
        assert_eq!(va, vb, "row {u} neighbors differ");
        for (a, b) in sa.iter().zip(sb) {
            assert_eq!(a.to_bits(), b.to_bits(), "row {u} score bits differ");
        }
    }

    // Two-pass parallel SimMassIndex assembly vs the sequential
    // reference (PartialEq covers offsets, clusters, and mass values;
    // the bit-level check is the kernel comparison below).
    let partition = LouvainStrategy { restarts: 2, seed: 21, refine: true }.cluster(&ds.social);
    let index = SimMassIndex::build(&sim, &partition);
    let index_ref = SimMassIndex::build_reference(&sim, &partition);
    assert_eq!(index, index_ref, "two-pass SimMassIndex differs from reference");

    // Blocked utility kernel vs the per-user full-width reference,
    // across tile sizes (including ones that do not divide the item
    // count) and ragged user blocks.
    let averages = release_noisy_cluster_averages(&partition, &ds.prefs, Epsilon::Finite(0.5), 7);
    let ni = averages.num_items();
    let users: Vec<UserId> = (0..n as u32).step_by(3).map(UserId).collect();
    let mut reference = Vec::new();
    let mut blocked = Vec::new();
    for tile in [1, 13, kernel::ITEM_TILE, ni + 1] {
        for block in users.chunks(kernel::USER_BLOCK) {
            kernel::utilities_block_tiled(&averages, &index, block, tile, &mut blocked);
            for (k, &u) in block.iter().enumerate() {
                kernel::utilities_into_reference(&averages, &index, u, &mut reference);
                let got = &blocked[k * ni..(k + 1) * ni];
                for (i, (a, b)) in got.iter().zip(&reference).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "tile={tile} user={u:?} item={i}: blocked kernel diverged"
                    );
                }
            }
        }
    }
}

/// The checks under whatever `SOCIALREC_THREADS` is ambient (1 in
/// default CI, the overridden value when run as a matrix child).
#[test]
fn equivalence_under_ambient_threads() {
    run_equivalence_checks();
}

/// Re-run `equivalence_under_ambient_threads` in a child process per
/// scheduler width. The `--exact` filter keeps the child from recursing
/// into this test.
#[test]
fn equivalence_matrix_across_thread_counts() {
    let exe = std::env::current_exe().expect("test binary path");
    for threads in ["1", "2", "8"] {
        let status = std::process::Command::new(&exe)
            .args(["--exact", "equivalence_under_ambient_threads"])
            .env("SOCIALREC_THREADS", threads)
            .status()
            .expect("spawn matrix child");
        assert!(status.success(), "equivalence failed under SOCIALREC_THREADS={threads}");
    }
}
