//! The serving contract: `RecommendationServer::recommend_batch` must
//! be **bit-identical** to `ClusterFramework::recommend` — same items,
//! same order, same utility bits — across seeds, noise models, and
//! degenerate partitions. The index and release cache are pure
//! post-processing rearrangements, so any divergence is a bug.

use socialrec_community::{ClusteringStrategy, LouvainStrategy, Partition};
use socialrec_core::private::framework::{ClusterFramework, NoiseModel};
use socialrec_core::{RecommenderInputs, TopN, TopNRecommender};
use socialrec_datasets::lastfm_like_scaled;
use socialrec_dp::Epsilon;
use socialrec_graph::UserId;
use socialrec_serve::RecommendationServer;
use socialrec_similarity::{Measure, SimilarityMatrix};

fn assert_bit_identical(got: &[TopN], want: &[TopN]) {
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.user, w.user);
        assert_eq!(g.items.len(), w.items.len());
        for ((gi, gu), (wi, wu)) in g.items.iter().zip(&w.items) {
            assert_eq!(gi, wi, "item differs for {:?}", g.user);
            assert_eq!(
                gu.to_bits(),
                wu.to_bits(),
                "utility bits differ for {:?} item {gi:?}: {gu} vs {wu}",
                g.user
            );
        }
    }
}

#[test]
fn batch_serving_is_bit_identical_to_framework() {
    let ds = lastfm_like_scaled(0.08, 13);
    let sim = SimilarityMatrix::build(&ds.social, &Measure::CommonNeighbors);
    let inputs = RecommenderInputs { prefs: &ds.prefs, sim: &sim };
    let n_users = ds.social.num_users();
    let users: Vec<UserId> = (0..n_users as u32).map(UserId).collect();

    let louvain = LouvainStrategy::default().cluster(&ds.social);
    let partitions: Vec<(&str, Partition)> = vec![
        ("louvain", louvain),
        ("singletons", Partition::singletons(n_users)),
        ("one_cluster", Partition::one_cluster(n_users)),
    ];

    for (name, partition) in &partitions {
        for noise in [NoiseModel::Laplace, NoiseModel::Geometric] {
            for epsilon in [Epsilon::Finite(0.5), Epsilon::Finite(0.05), Epsilon::Infinite] {
                let server = RecommendationServer::new(partition, &sim, epsilon).with_noise(noise);
                let fw = ClusterFramework::new(partition, epsilon).with_noise(noise);
                for seed in [0u64, 1, 0xDEAD_BEEF] {
                    let got = server.recommend_batch(&inputs, &users, 10, seed);
                    let want = fw.recommend(&inputs, &users, 10, seed);
                    assert_bit_identical(&got, &want);
                    // Same generation again: served from cache, still
                    // identical.
                    let again = server.recommend_batch(&inputs, &users, 10, seed);
                    assert_bit_identical(&again, &want);
                }
                let snap = server.metrics().snapshot();
                assert_eq!(snap.cache_rebuilds, 3, "{name}: one rebuild per distinct seed");
                assert_eq!(snap.cache_hits, 3, "{name}: repeat batches must hit");
            }
        }
    }
}

#[test]
fn partial_and_reordered_batches_still_match() {
    let ds = lastfm_like_scaled(0.05, 99);
    let sim = SimilarityMatrix::build(&ds.social, &Measure::AdamicAdar);
    let inputs = RecommenderInputs { prefs: &ds.prefs, sim: &sim };
    let partition = LouvainStrategy::default().cluster(&ds.social);
    let fw = ClusterFramework::new(&partition, Epsilon::Finite(0.2));
    let server = RecommendationServer::new(&partition, &sim, Epsilon::Finite(0.2));

    // A scattered, unsorted, repeating subset of users.
    let n = ds.social.num_users() as u32;
    let users: Vec<UserId> = [n - 1, 3, 17 % n, 3, 0, n / 2].into_iter().map(UserId).collect();
    let got = server.recommend_batch(&inputs, &users, 25, 5);
    let want = fw.recommend(&inputs, &users, 25, 5);
    assert_bit_identical(&got, &want);
}
