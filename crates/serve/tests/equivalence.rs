//! The serving contract: every serving path — `RecommendationServer`'s
//! batches, and the sharded daemon's fan-out and coalescing admission —
//! must be **bit-identical** to `ClusterFramework::recommend`: same
//! items, same order, same utility bits, across seeds, noise models,
//! and degenerate partitions. The index, release cache, shard slices,
//! and admission batching are pure post-processing rearrangements, so
//! any divergence is a bug.

use socialrec_community::{ClusteringStrategy, LouvainStrategy, Partition};
use socialrec_core::private::framework::{ClusterFramework, NoiseModel};
use socialrec_core::{RecommenderInputs, TopN, TopNRecommender};
use socialrec_datasets::lastfm_like_scaled;
use socialrec_dp::Epsilon;
use socialrec_graph::UserId;
use socialrec_serve::{RecommendationServer, ShardedServer};
use socialrec_similarity::{Measure, SimilarityMatrix};

fn assert_bit_identical(got: &[TopN], want: &[TopN]) {
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.user, w.user);
        assert_eq!(g.items.len(), w.items.len());
        for ((gi, gu), (wi, wu)) in g.items.iter().zip(&w.items) {
            assert_eq!(gi, wi, "item differs for {:?}", g.user);
            assert_eq!(
                gu.to_bits(),
                wu.to_bits(),
                "utility bits differ for {:?} item {gi:?}: {gu} vs {wu}",
                g.user
            );
        }
    }
}

#[test]
fn batch_serving_is_bit_identical_to_framework() {
    let ds = lastfm_like_scaled(0.08, 13);
    let sim = SimilarityMatrix::build(&ds.social, &Measure::CommonNeighbors);
    let inputs = RecommenderInputs { prefs: &ds.prefs, sim: &sim };
    let n_users = ds.social.num_users();
    let users: Vec<UserId> = (0..n_users as u32).map(UserId).collect();

    let louvain = LouvainStrategy::default().cluster(&ds.social);
    let partitions: Vec<(&str, Partition)> = vec![
        ("louvain", louvain),
        ("singletons", Partition::singletons(n_users)),
        ("one_cluster", Partition::one_cluster(n_users)),
    ];

    for (name, partition) in &partitions {
        for noise in [NoiseModel::Laplace, NoiseModel::Geometric] {
            for epsilon in [Epsilon::Finite(0.5), Epsilon::Finite(0.05), Epsilon::Infinite] {
                let server = RecommendationServer::new(partition, &sim, epsilon).with_noise(noise);
                let fw = ClusterFramework::new(partition, epsilon).with_noise(noise);
                for seed in [0u64, 1, 0xDEAD_BEEF] {
                    let got = server.recommend_batch(&inputs, &users, 10, seed);
                    let want = fw.recommend(&inputs, &users, 10, seed);
                    assert_bit_identical(&got, &want);
                    // Same generation again: served from cache, still
                    // identical.
                    let again = server.recommend_batch(&inputs, &users, 10, seed);
                    assert_bit_identical(&again, &want);
                }
                let snap = server.metrics().snapshot();
                assert_eq!(snap.cache_rebuilds, 3, "{name}: one rebuild per distinct seed");
                assert_eq!(snap.cache_hits, 3, "{name}: repeat batches must hit");
            }
        }
    }
}

#[test]
fn partial_and_reordered_batches_still_match() {
    let ds = lastfm_like_scaled(0.05, 99);
    let sim = SimilarityMatrix::build(&ds.social, &Measure::AdamicAdar);
    let inputs = RecommenderInputs { prefs: &ds.prefs, sim: &sim };
    let partition = LouvainStrategy::default().cluster(&ds.social);
    let fw = ClusterFramework::new(&partition, Epsilon::Finite(0.2));
    let server = RecommendationServer::new(&partition, &sim, Epsilon::Finite(0.2));

    // A scattered, unsorted, repeating subset of users.
    let n = ds.social.num_users() as u32;
    let users: Vec<UserId> = [n - 1, 3, 17 % n, 3, 0, n / 2].into_iter().map(UserId).collect();
    let got = server.recommend_batch(&inputs, &users, 25, 5);
    let want = fw.recommend(&inputs, &users, 25, 5);
    assert_bit_identical(&got, &want);
}

#[test]
fn sharded_daemon_is_bit_identical_to_framework() {
    let ds = lastfm_like_scaled(0.06, 21);
    let sim = SimilarityMatrix::build(&ds.social, &Measure::CommonNeighbors);
    let inputs = RecommenderInputs { prefs: &ds.prefs, sim: &sim };
    let n_users = ds.social.num_users();
    let users: Vec<UserId> = (0..n_users as u32).map(UserId).collect();

    let louvain = LouvainStrategy::default().cluster(&ds.social);
    let partitions: Vec<(&str, Partition)> = vec![
        ("louvain", louvain),
        ("singletons", Partition::singletons(n_users)),
        ("one_cluster", Partition::one_cluster(n_users)),
    ];
    for (name, partition) in &partitions {
        for noise in [NoiseModel::Laplace, NoiseModel::Geometric] {
            let epsilon = Epsilon::Finite(0.3);
            let fw = ClusterFramework::new(partition, epsilon).with_noise(noise);
            for num_shards in [1, 4, 7] {
                let daemon =
                    ShardedServer::new(partition, &sim, epsilon, num_shards).with_noise(noise);
                for seed in [0u64, 0xDEAD_BEEF] {
                    let want = fw.recommend(&inputs, &users, 10, seed);
                    let got = daemon.recommend_batch(&inputs, &users, 10, seed);
                    assert_bit_identical(&got, &want);
                }
                assert_eq!(
                    daemon.exchange().epoch(),
                    2,
                    "{name}/{num_shards} shards: one build per seed, shared across shards"
                );
            }
        }
    }
}

#[test]
fn coalescing_admission_is_bit_identical_to_framework() {
    // Drive the admission queue from many threads at once so leaders
    // genuinely coalesce batches, then check every answer against the
    // uncoalesced reference. Mixed n and repeated users included.
    let ds = lastfm_like_scaled(0.05, 77);
    let sim = SimilarityMatrix::build(&ds.social, &Measure::AdamicAdar);
    let inputs = RecommenderInputs { prefs: &ds.prefs, sim: &sim };
    let partition = LouvainStrategy::default().cluster(&ds.social);
    let epsilon = Epsilon::Finite(0.2);
    let fw = ClusterFramework::new(&partition, epsilon);
    let daemon = ShardedServer::new(&partition, &sim, epsilon, 4);
    let n_users = ds.social.num_users() as u32;
    let seed = 11u64;

    let all: Vec<UserId> = (0..n_users).map(UserId).collect();
    let want = fw.recommend(&inputs, &all, 10, seed);

    std::thread::scope(|s| {
        for t in 0..8u32 {
            let (daemon, inputs, want) = (&daemon, &inputs, &want);
            s.spawn(move || {
                for i in 0..(n_users / 2) {
                    let u = UserId((i * 7 + t * 13) % n_users);
                    let top = daemon.recommend_one(inputs, u, 10, seed);
                    let reference = want.iter().find(|w| w.user == u).unwrap();
                    // Clamp the reference to this query's n (10 = same).
                    assert_bit_identical(
                        std::slice::from_ref(&top),
                        std::slice::from_ref(reference),
                    );
                }
            });
        }
    });
    assert_eq!(daemon.exchange().epoch(), 1, "coalesced singles share one release build");

    // The per-shard counters must conserve: every submitted query
    // served exactly once.
    let snap = daemon.registry().snapshot();
    let served: u64 =
        snap.counters.iter().filter(|(n, _)| n.ends_with(".queries")).map(|(_, v)| *v).sum();
    assert_eq!(served, 8 * (n_users as u64 / 2));
}
