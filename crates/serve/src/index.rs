//! The precomputed similarity-mass index.
//!
//! Module `A_R` of Algorithm 1 spends, per query, a walk over the whole
//! similarity row of the user (`O(|sim(u)|)`, plus zeroing a
//! `num_clusters`-sized scratch) just to learn how much similarity mass
//! the user has in each cluster. That mapping depends only on the
//! public similarity matrix and the public partition — never on the
//! private release — so a server can compute it once, up front, for
//! every user.
//!
//! [`SimMassIndex`] stores exactly that: a CSR of per-user
//! `(cluster, Σ sim)` pairs, collapsing the per-query cost to one
//! sparse axpy per *touched cluster* (`O(C_u)` rows) instead of one
//! accumulation per similar user.
//!
//! # Row storage
//!
//! The index rows live in one of two backings behind one access path
//! ([`row_vals`](SimMassIndex::row_vals)):
//!
//! * **Heap** — the flat CSR arrays built in RAM, the original form;
//! * **Mapped** — a zero-copy window onto a
//!   [`CsrArtifact`] file (see `socialrec_similarity::artifact`),
//!   shared via `Arc` so sharding never duplicates the backing bytes.
//!
//! Heap [`slice_rows`](SimMassIndex::slice_rows) copies (the historical
//! rebased-slice semantics); mapped `slice_rows` just narrows the
//! window. Serving code cannot tell the difference — the equivalence
//! tests pin that both backings return identical row bits.

use rayon::prelude::*;
use socialrec_community::Partition;
use socialrec_graph::UserId;
use socialrec_similarity::artifact::{
    write_csr_artifact, ArtifactKind, CsrArtifact, StreamingCsrWriter, ValueKind,
};
use socialrec_similarity::csr::assemble_csr;
use socialrec_similarity::{RowVals, SimilarityRows};
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// CSR of per-user `(cluster, similarity mass)` pairs.
///
/// Row `u` lists, in ascending cluster id, every cluster holding at
/// least one of `u`'s similar users together with the summed similarity
/// `Σ_{v ∈ sim(u) ∩ c} sim(u, v)`.
///
/// # Floating-point contract
///
/// The masses are accumulated **in the similarity row's neighbor
/// order**, and rows are emitted in ascending cluster order with
/// exact-zero sums dropped — the same additions, in the same order,
/// that [`ClusterFramework::utility_estimates_into`] performs through
/// its dense scratch. Serving through this index is therefore
/// bit-identical to the reference path, not merely close.
///
/// A **compact (f32) artifact** relaxes this per DESIGN.md §6e: each
/// stored mass is the f64 mass rounded once to f32 at write time, and
/// widening on read is exact — so serving a compact index is
/// bit-identical to serving [`quantized`](SimMassIndex::quantized) of
/// the full-precision index, which the tests verify exactly.
///
/// [`ClusterFramework::utility_estimates_into`]:
///     socialrec_core::private::ClusterFramework::utility_estimates_into
#[derive(Clone, Debug)]
pub struct SimMassIndex {
    repr: Repr,
    num_clusters: usize,
}

#[derive(Clone, Debug)]
enum Repr {
    /// Flat CSR arrays owned in RAM.
    Heap { offsets: Vec<u64>, clusters: Vec<u32>, masses: Vec<f64> },
    /// A window of `rows` rows starting at artifact row `base`. The
    /// artifact is shared, so slicing is O(1) and allocation-free.
    Mapped { art: Arc<CsrArtifact>, base: usize, rows: usize },
}

impl SimMassIndex {
    /// Build the index for every user, in parallel, from any similarity
    /// row store (heap matrix or mapped artifact).
    ///
    /// Assembly is the two-pass CSR build of `socialrec_similarity::csr`:
    /// each worker reuses one dense cluster scratch and appends rows
    /// straight into its chunk buffer, then the flat arrays are written
    /// with direct-slot parallel copies. Bit-identical to
    /// [`build_reference`](SimMassIndex::build_reference) for any
    /// thread count.
    ///
    /// Panics if `sim` and `partition` disagree on the user count.
    pub fn build<R: SimilarityRows + ?Sized>(sim: &R, partition: &Partition) -> SimMassIndex {
        let n = sim.num_users();
        assert_eq!(n, partition.num_users(), "partition must cover the similarity matrix's users");
        let nc = partition.num_clusters();
        let parts = assemble_csr(
            n,
            0u32,
            0.0f64,
            || vec![0.0f64; nc],
            |scratch: &mut Vec<f64>, u, cols, vals| {
                accumulate_row(sim, partition, UserId(u as u32), scratch);
                for (cl, m) in scratch.iter_mut().enumerate() {
                    if *m != 0.0 {
                        cols.push(cl as u32);
                        vals.push(*m);
                    }
                    *m = 0.0;
                }
            },
        );
        SimMassIndex {
            repr: Repr::Heap { offsets: parts.offsets, clusters: parts.cols, masses: parts.vals },
            num_clusters: nc,
        }
    }

    /// Sequential reference for [`build`](SimMassIndex::build): one
    /// thread, one dense scratch, row-major push-down. Retained so the
    /// equivalence tests (and the thread-count matrix) can prove the
    /// parallel two-pass assembly produces the same bytes.
    pub fn build_reference<R: SimilarityRows + ?Sized>(
        sim: &R,
        partition: &Partition,
    ) -> SimMassIndex {
        let n = sim.num_users();
        assert_eq!(n, partition.num_users(), "partition must cover the similarity matrix's users");
        let nc = partition.num_clusters();
        let mut scratch = vec![0.0f64; nc];
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let mut clusters = Vec::new();
        let mut masses = Vec::new();
        for u in 0..n as u32 {
            accumulate_row(sim, partition, UserId(u), &mut scratch);
            for (cl, m) in scratch.iter_mut().enumerate() {
                if *m != 0.0 {
                    clusters.push(cl as u32);
                    masses.push(*m);
                }
                *m = 0.0;
            }
            offsets.push(clusters.len() as u64);
        }
        SimMassIndex { repr: Repr::Heap { offsets, clusters, masses }, num_clusters: nc }
    }

    /// The `(clusters, masses)` row for one user, f64 only.
    ///
    /// Works for every heap index and for full-precision (f64) mapped
    /// artifacts. **Panics** on a compact (f32) artifact — those rows
    /// exist only at f32 width; use [`row_vals`](SimMassIndex::row_vals),
    /// which every serving path goes through.
    #[inline]
    pub fn row(&self, u: UserId) -> (&[u32], &[f64]) {
        let (clusters, vals) = self.row_vals(u);
        match vals {
            RowVals::F64(masses) => (clusters, masses),
            RowVals::F32(_) => {
                panic!("compact (f32) sim-mass artifact has no f64 rows; use row_vals")
            }
        }
    }

    /// The `(clusters, masses)` row for one user at whatever width the
    /// backing stores — the universal access path (see [`RowVals`]).
    #[inline]
    pub fn row_vals(&self, u: UserId) -> (&[u32], RowVals<'_>) {
        match &self.repr {
            Repr::Heap { offsets, clusters, masses } => {
                let lo = offsets[u.index()] as usize;
                let hi = offsets[u.index() + 1] as usize;
                (&clusters[lo..hi], RowVals::F64(&masses[lo..hi]))
            }
            Repr::Mapped { art, base, rows } => {
                assert!(u.index() < *rows, "user {u:?} outside this index window");
                let (lo, hi) = art.row_range(base + u.index());
                let clusters = &art.cols()[lo..hi];
                let vals = match (art.vals_f64(), art.vals_f32()) {
                    (Some(v), _) => RowVals::F64(&v[lo..hi]),
                    (_, Some(v)) => RowVals::F32(&v[lo..hi]),
                    _ => unreachable!("artifact has exactly one value section"),
                };
                (clusters, vals)
            }
        }
    }

    /// Number of indexed users.
    pub fn num_users(&self) -> usize {
        match &self.repr {
            Repr::Heap { offsets, .. } => offsets.len() - 1,
            Repr::Mapped { rows, .. } => *rows,
        }
    }

    /// Number of clusters in the underlying partition.
    pub fn num_clusters(&self) -> usize {
        self.num_clusters
    }

    /// Total stored `(cluster, mass)` pairs.
    pub fn nnz(&self) -> usize {
        match &self.repr {
            Repr::Heap { clusters, .. } => clusters.len(),
            Repr::Mapped { art, base, rows } => {
                let offsets = art.offsets();
                (offsets[base + rows] - offsets[*base]) as usize
            }
        }
    }

    /// Whether the rows are served zero-copy from a file mapping.
    pub fn is_mapped(&self) -> bool {
        match &self.repr {
            Repr::Heap { .. } => false,
            Repr::Mapped { art, .. } => art.is_mapped(),
        }
    }

    /// Storage width of the masses ([`ValueKind::F64`] for heap).
    pub fn value_kind(&self) -> ValueKind {
        match &self.repr {
            Repr::Heap { .. } => ValueKind::F64,
            Repr::Mapped { art, .. } => art.header().value_kind,
        }
    }

    /// Rows `[lo, hi)` rebased so the result's user `0` is this index's
    /// user `lo` — the per-shard index of the sharded server.
    ///
    /// Heap backing: an owned copy of the rows (copied bytes, no
    /// re-accumulation, so the floating-point contract is preserved
    /// verbatim). Mapped backing: the same shared artifact with a
    /// narrowed window — O(1), no bytes duplicated, which is what lets
    /// a million-user daemon shard without re-materializing the index.
    ///
    /// Panics if `lo > hi` or `hi` exceeds the user count.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> SimMassIndex {
        assert!(lo <= hi && hi <= self.num_users(), "slice out of bounds");
        match &self.repr {
            Repr::Heap { offsets, clusters, masses } => {
                let base = offsets[lo];
                let new_offsets: Vec<u64> = offsets[lo..=hi].iter().map(|&o| o - base).collect();
                let (start, end) = (offsets[lo] as usize, offsets[hi] as usize);
                SimMassIndex {
                    repr: Repr::Heap {
                        offsets: new_offsets,
                        clusters: clusters[start..end].to_vec(),
                        masses: masses[start..end].to_vec(),
                    },
                    num_clusters: self.num_clusters,
                }
            }
            Repr::Mapped { art, base, .. } => SimMassIndex {
                repr: Repr::Mapped { art: Arc::clone(art), base: base + lo, rows: hi - lo },
                num_clusters: self.num_clusters,
            },
        }
    }

    /// The full-precision index with every mass pre-rounded through f32
    /// (`(m as f32) as f64`) — the exact reference a compact (f32)
    /// artifact serves. Serving from an f32 artifact is bit-identical
    /// to serving this, which is how the compact-value contract is
    /// tested without any tolerance.
    pub fn quantized(&self) -> SimMassIndex {
        let n = self.num_users();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let mut clusters = Vec::new();
        let mut masses = Vec::new();
        for u in 0..n as u32 {
            let (cls, vals) = self.row_vals(UserId(u));
            clusters.extend_from_slice(cls);
            for i in 0..vals.len() {
                masses.push((vals.get(i) as f32) as f64);
            }
            offsets.push(clusters.len() as u64);
        }
        SimMassIndex {
            repr: Repr::Heap { offsets, clusters, masses },
            num_clusters: self.num_clusters,
        }
    }

    /// Recompute only the `dirty` rows (ascending user ids) against the
    /// current similarity store and partition, splicing every other row
    /// from `self` unchanged — the streaming-delta companion to
    /// [`build`](SimMassIndex::build).
    ///
    /// When `dirty` covers every row whose contents a refresh could
    /// have changed (see [`dirty_index_rows`]), the result is
    /// **bit-identical** to `SimMassIndex::build(sim, partition)` from
    /// scratch: recomputed rows run the exact dense-scratch walk of the
    /// full build, and clean rows are byte copies. The partition may
    /// have a different cluster count than the one this index was built
    /// with (labels just relabel row contents, which is what makes rows
    /// dirty).
    ///
    /// Requires full-precision (f64) rows; compact (f32) indices are
    /// read-only serving artifacts.
    pub fn update_rows<R: SimilarityRows + ?Sized>(
        &self,
        sim: &R,
        partition: &Partition,
        dirty: &[UserId],
    ) -> SimMassIndex {
        let n = self.num_users();
        assert_eq!(sim.num_users(), n, "deltas must preserve the user set");
        assert_eq!(partition.num_users(), n, "partition must cover the similarity matrix's users");
        debug_assert!(dirty.windows(2).all(|w| w[0] < w[1]), "dirty rows must strictly ascend");
        assert!(dirty.last().is_none_or(|u| u.index() < n), "dirty row out of range");
        let _span = socialrec_obs::span!("update.index_rows", rows = dirty.len());
        let nc = partition.num_clusters();

        // Recompute the dirty rows in parallel with the shared walk.
        let new_rows: Vec<(Vec<u32>, Vec<f64>)> = dirty
            .par_iter()
            .map_init(
                || vec![0.0f64; nc],
                |scratch, &u| {
                    let mut cols = Vec::new();
                    let mut vals = Vec::new();
                    accumulate_row(sim, partition, u, scratch);
                    for (cl, m) in scratch.iter_mut().enumerate() {
                        if *m != 0.0 {
                            cols.push(cl as u32);
                            vals.push(*m);
                        }
                        *m = 0.0;
                    }
                    (cols, vals)
                },
            )
            .collect();

        // Splice: clean rows verbatim, dirty rows replaced.
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let mut clusters = Vec::new();
        let mut masses = Vec::new();
        let mut next_dirty = 0usize;
        for u in 0..n as u32 {
            if next_dirty < dirty.len() && dirty[next_dirty].0 == u {
                let (cols, vals) = &new_rows[next_dirty];
                clusters.extend_from_slice(cols);
                masses.extend_from_slice(vals);
                next_dirty += 1;
            } else {
                let (cols, vals) = self.row(UserId(u));
                clusters.extend_from_slice(cols);
                masses.extend_from_slice(vals);
            }
            offsets.push(clusters.len() as u64);
        }
        SimMassIndex { repr: Repr::Heap { offsets, clusters, masses }, num_clusters: nc }
    }

    /// Write this index as an mmap-able artifact file (kind
    /// [`ArtifactKind::SimMass`], `meta` = cluster count). With
    /// [`ValueKind::F32`] the masses are quantized per the documented
    /// compact-value contract.
    pub fn write_artifact(&self, path: &Path, value_kind: ValueKind) -> io::Result<()> {
        let n = self.num_users();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let mut cols = Vec::with_capacity(self.nnz());
        let mut vals = Vec::with_capacity(self.nnz());
        for u in 0..n as u32 {
            let (cls, row) = self.row_vals(UserId(u));
            cols.extend_from_slice(cls);
            for i in 0..row.len() {
                vals.push(row.get(i));
            }
            offsets.push(cols.len() as u64);
        }
        write_csr_artifact(
            path,
            ArtifactKind::SimMass,
            value_kind,
            self.num_clusters as u64,
            &offsets,
            &cols,
            &vals,
        )
    }

    /// Build the index row-by-row from any similarity store and stream
    /// it straight into an artifact at `path`, never materializing the
    /// index in RAM — the bounded-memory companion to
    /// [`build`](SimMassIndex::build) +
    /// [`write_artifact`](SimMassIndex::write_artifact), and
    /// byte-identical to that pair (rows are accumulated by the same
    /// dense-scratch walk in the same order). `chunk_rows = 0` picks a
    /// default. Returns the entry count written.
    pub fn stream_build_artifact<R: SimilarityRows + ?Sized>(
        sim: &R,
        partition: &Partition,
        path: &Path,
        value_kind: ValueKind,
        chunk_rows: usize,
    ) -> io::Result<u64> {
        let n = sim.num_users();
        assert_eq!(n, partition.num_users(), "partition must cover the similarity matrix's users");
        let nc = partition.num_clusters();
        let chunk_rows = if chunk_rows == 0 { 8192 } else { chunk_rows };
        let _span = socialrec_obs::span!("simmass.stream_build", users = n);
        let mut writer =
            StreamingCsrWriter::create(path, ArtifactKind::SimMass, value_kind, nc as u64, n)?;
        // Dense cluster scratch is O(clusters) per worker; pool across
        // chunks like the similarity streamer does.
        let pool: Mutex<Vec<Vec<f64>>> = Mutex::new(Vec::new());
        let mut entries = 0u64;
        for lo in (0..n).step_by(chunk_rows.max(1)) {
            let hi = (lo + chunk_rows).min(n);
            let workers = rayon::current_num_threads().max(1);
            let sub = (hi - lo).div_ceil(workers * 4).max(16);
            let ranges: Vec<(usize, usize)> =
                (lo..hi).step_by(sub).map(|a| (a, (a + sub).min(hi))).collect();
            let pieces: Vec<(Vec<u64>, Vec<u32>, Vec<f64>)> = ranges
                .par_iter()
                .map(|&(a, b)| {
                    let mut scratch = pool
                        .lock()
                        .expect("scratch pool")
                        .pop()
                        .unwrap_or_else(|| vec![0.0f64; nc]);
                    let mut lens = Vec::with_capacity(b - a);
                    let mut cols = Vec::new();
                    let mut vals = Vec::new();
                    for u in a..b {
                        accumulate_row(sim, partition, UserId(u as u32), &mut scratch);
                        let before = cols.len();
                        for (cl, m) in scratch.iter_mut().enumerate() {
                            if *m != 0.0 {
                                cols.push(cl as u32);
                                vals.push(*m);
                            }
                            *m = 0.0;
                        }
                        lens.push((cols.len() - before) as u64);
                    }
                    pool.lock().expect("scratch pool").push(scratch);
                    (lens, cols, vals)
                })
                .collect();
            for (lens, cols, vals) in &pieces {
                let mut at = 0usize;
                for &len in lens {
                    let len = len as usize;
                    writer.push_row(&cols[at..at + len], &vals[at..at + len])?;
                    at += len;
                    entries += len as u64;
                }
            }
        }
        writer.finish()?;
        Ok(entries)
    }

    /// Open an artifact written by
    /// [`write_artifact`](SimMassIndex::write_artifact) or
    /// [`stream_build_artifact`](SimMassIndex::stream_build_artifact),
    /// memory-mapping where supported.
    pub fn open_artifact(path: &Path) -> io::Result<SimMassIndex> {
        Self::from_artifact(CsrArtifact::open(path)?)
    }

    /// Open through the heap-copy backing (tests; non-mmap platforms).
    pub fn open_artifact_owned(path: &Path) -> io::Result<SimMassIndex> {
        Self::from_artifact(CsrArtifact::open_owned(path)?)
    }

    /// Wrap a validated artifact, checking it holds a sim-mass index.
    pub fn from_artifact(art: CsrArtifact) -> io::Result<SimMassIndex> {
        if art.header().kind != ArtifactKind::SimMass {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("artifact holds {:?}, not a sim-mass index", art.header().kind),
            ));
        }
        let num_clusters = art.header().meta as usize;
        let rows = art.num_rows();
        Ok(SimMassIndex { repr: Repr::Mapped { art: Arc::new(art), base: 0, rows }, num_clusters })
    }
}

/// Accumulate `u`'s per-cluster similarity mass into `scratch` — the
/// one shared walk of every builder, so heap and streaming builds are
/// additions-for-additions identical. The f32 arm widens exactly, so a
/// mass index rebuilt *from* a compact similarity artifact accumulates
/// exactly the quantized scores.
#[inline]
fn accumulate_row<R: SimilarityRows + ?Sized>(
    sim: &R,
    partition: &Partition,
    u: UserId,
    scratch: &mut [f64],
) {
    let (users, scores) = sim.row_vals(u);
    match scores {
        RowVals::F64(ss) => {
            for (&v, &s) in users.iter().zip(ss) {
                scratch[partition.cluster_of(v) as usize] += s;
            }
        }
        RowVals::F32(ss) => {
            for (&v, &s) in users.iter().zip(ss) {
                scratch[partition.cluster_of(v) as usize] += f64::from(s);
            }
        }
    }
}

/// The index rows a refresh can change, given the similarity-dirty
/// rows and the users whose cluster id changed.
///
/// Row `u` of the mass index depends on `u`'s similarity row and on the
/// cluster labels of the users *in* that row. So it changes only if
/// `u`'s similarity row changed (`sim_dirty`) or some `v ∈ sim(u)`
/// moved clusters — and by symmetry those `u` are exactly the similar
/// users of the moved ones, read from the *new* similarity store. The
/// moved users themselves are included for good measure (their own rows
/// are unaffected by their own label, but the superset is cheap and
/// keeps the contract simple). Result ascends, deduplicated.
pub fn dirty_index_rows<R: SimilarityRows + ?Sized>(
    sim: &R,
    sim_dirty: &[UserId],
    moved: &[UserId],
) -> Vec<UserId> {
    let mut rows: Vec<UserId> = sim_dirty.to_vec();
    rows.extend_from_slice(moved);
    for &v in moved {
        let (us, _) = sim.row_vals(v);
        rows.extend_from_slice(us);
    }
    rows.sort_unstable();
    rows.dedup();
    rows
}

impl PartialEq for SimMassIndex {
    /// Logical equality: same shape and bit-identical rows, regardless
    /// of backing (heap vs mapped) — f32-backed masses compare at their
    /// widened value.
    fn eq(&self, other: &Self) -> bool {
        if self.num_users() != other.num_users()
            || self.num_clusters != other.num_clusters
            || self.nnz() != other.nnz()
        {
            return false;
        }
        (0..self.num_users() as u32).all(|u| {
            let (ca, va) = self.row_vals(UserId(u));
            let (cb, vb) = other.row_vals(UserId(u));
            ca == cb
                && va.len() == vb.len()
                && (0..va.len()).all(|i| va.get(i).to_bits() == vb.get(i).to_bits())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialrec_graph::social::social_graph_from_edges;
    use socialrec_similarity::{Measure, SimilarityMatrix};

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("socialrec-index-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.srart", std::process::id()))
    }

    #[test]
    fn matches_dense_scratch_accumulation() {
        let s =
            social_graph_from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
                .unwrap();
        let sim = SimilarityMatrix::build(&s, &Measure::AdamicAdar);
        let partition = Partition::from_assignment(&[0, 0, 0, 1, 1, 1]);
        let idx = SimMassIndex::build(&sim, &partition);
        assert_eq!(idx.num_users(), 6);
        assert_eq!(idx.num_clusters(), 2);
        for u in 0..6u32 {
            let mut dense = [0.0f64; 2];
            let (vs, ss) = sim.row(UserId(u));
            for (&v, &s) in vs.iter().zip(ss) {
                dense[partition.cluster_of(v) as usize] += s;
            }
            let (cls, ms) = idx.row(UserId(u));
            let mut it = cls.iter().zip(ms);
            for (cl, &want) in dense.iter().enumerate() {
                if want != 0.0 {
                    let (&c, &m) = it.next().expect("row too short");
                    assert_eq!(c, cl as u32);
                    assert_eq!(m.to_bits(), want.to_bits(), "mass differs bitwise");
                }
            }
            assert!(it.next().is_none(), "row has spurious entries");
        }
    }

    #[test]
    fn rows_are_sorted_and_nonzero() {
        let s = social_graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let sim = SimilarityMatrix::build(&s, &Measure::CommonNeighbors);
        let partition = Partition::singletons(5);
        let idx = SimMassIndex::build(&sim, &partition);
        for u in 0..5u32 {
            let (cls, ms) = idx.row(UserId(u));
            assert!(cls.windows(2).all(|w| w[0] < w[1]), "clusters not ascending");
            assert!(ms.iter().all(|&m| m != 0.0));
        }
        let total: usize = (0..5u32).map(|u| idx.row(UserId(u)).0.len()).sum();
        assert_eq!(idx.nnz(), total);
    }

    #[test]
    fn two_pass_build_matches_reference_bitwise() {
        // Cycle + chords: varied row lengths, including users whose
        // masses collapse into few clusters.
        let mut edges: Vec<(u32, u32)> = (0..40u32).map(|u| (u, (u + 1) % 40)).collect();
        edges.extend((0..20u32).map(|u| (u, u + 20)));
        let s = social_graph_from_edges(40, &edges).unwrap();
        for measure in [Measure::CommonNeighbors, Measure::AdamicAdar] {
            let sim = SimilarityMatrix::build_sequential(&s, &measure);
            for partition in [
                Partition::from_assignment(&(0..40).map(|u| (u % 5) as u32).collect::<Vec<_>>()),
                Partition::singletons(40),
                Partition::one_cluster(40),
            ] {
                let par = SimMassIndex::build(&sim, &partition);
                let refr = SimMassIndex::build_reference(&sim, &partition);
                assert_eq!(par, refr, "two-pass build differs from reference");
            }
        }
    }

    #[test]
    fn slice_rows_rebases_and_preserves_bits() {
        let s =
            social_graph_from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
                .unwrap();
        let sim = SimilarityMatrix::build(&s, &Measure::AdamicAdar);
        let partition = Partition::from_assignment(&[0, 1, 0, 1, 0, 1]);
        let full = SimMassIndex::build(&sim, &partition);
        // Shard-style cover: [0,2), [2,4), [4,6).
        for lo in [0usize, 2, 4] {
            let slice = full.slice_rows(lo, lo + 2);
            assert_eq!(slice.num_users(), 2);
            assert_eq!(slice.num_clusters(), full.num_clusters());
            for local in 0..2u32 {
                let (gc, gm) = full.row(UserId(lo as u32 + local));
                let (sc, sm) = slice.row(UserId(local));
                assert_eq!(gc, sc);
                for (a, b) in gm.iter().zip(sm) {
                    assert_eq!(a.to_bits(), b.to_bits(), "sliced mass differs bitwise");
                }
            }
        }
        // Degenerate slices are fine; out-of-bounds is not.
        assert_eq!(full.slice_rows(3, 3).num_users(), 0);
        assert_eq!(full.slice_rows(0, 6).nnz(), full.nnz());
    }

    /// Satellite coverage: the shard-shaped boundary cases — an empty
    /// shard, a single-user shard, and a final ragged shard — on both
    /// backings.
    #[test]
    fn slice_rows_boundary_cases_on_both_backings() {
        let s = social_graph_from_edges(
            7,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 0), (0, 3), (2, 5)],
        )
        .unwrap();
        let sim = SimilarityMatrix::build(&s, &Measure::CommonNeighbors);
        let partition = Partition::from_assignment(&[0, 1, 2, 0, 1, 2, 0]);
        let heap = SimMassIndex::build(&sim, &partition);
        let path = temp_path("slice-bounds");
        heap.write_artifact(&path, ValueKind::F64).unwrap();
        let mapped = SimMassIndex::open_artifact(&path).unwrap();

        for full in [&heap, &mapped] {
            // Empty shard: zero users anywhere in the range, nnz 0.
            for at in [0usize, 3, 7] {
                let empty = full.slice_rows(at, at);
                assert_eq!(empty.num_users(), 0);
                assert_eq!(empty.nnz(), 0);
            }
            // Single-user shard: one row, bits preserved, local id 0.
            for at in [0usize, 4, 6] {
                let one = full.slice_rows(at, at + 1);
                assert_eq!(one.num_users(), 1);
                let (gc, gv) = full.row_vals(UserId(at as u32));
                let (sc, sv) = one.row_vals(UserId(0));
                assert_eq!(gc, sc);
                for i in 0..gv.len() {
                    assert_eq!(gv.get(i).to_bits(), sv.get(i).to_bits());
                }
            }
            // Final ragged shard: chunk 3 over 7 users → [6, 7).
            let ragged = full.slice_rows(6, 7);
            assert_eq!(ragged.num_users(), 1);
            let (gc, _) = full.row_vals(UserId(6));
            let (sc, _) = ragged.row_vals(UserId(0));
            assert_eq!(gc, sc);
        }
        // Mapped slices share the backing and stay O(1): a sub-slice of
        // a slice still answers correctly.
        let nested = mapped.slice_rows(2, 7).slice_rows(3, 5);
        let (gc, _) = mapped.row_vals(UserId(5));
        let (nc2, _) = nested.row_vals(UserId(0));
        assert_eq!(gc, nc2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_index_equals_heap_index_and_f32_equals_quantized() {
        let s = social_graph_from_edges(
            8,
            &[(0, 1), (1, 2), (2, 3), (3, 0), (4, 5), (5, 6), (6, 7), (7, 4), (0, 4), (2, 6)],
        )
        .unwrap();
        let sim = SimilarityMatrix::build(&s, &Measure::AdamicAdar);
        let partition = Partition::from_assignment(&[0, 0, 1, 1, 2, 2, 3, 3]);
        let heap = SimMassIndex::build(&sim, &partition);

        let p64 = temp_path("eq-f64");
        let p32 = temp_path("eq-f32");
        heap.write_artifact(&p64, ValueKind::F64).unwrap();
        heap.write_artifact(&p32, ValueKind::F32).unwrap();

        // Full precision: mapped == heap exactly, both open paths.
        for opened in [
            SimMassIndex::open_artifact(&p64).unwrap(),
            SimMassIndex::open_artifact_owned(&p64).unwrap(),
        ] {
            assert_eq!(opened.num_clusters(), heap.num_clusters());
            assert_eq!(opened, heap);
            assert_eq!(opened.value_kind(), ValueKind::F64);
        }

        // Compact: mapped f32 == quantized heap exactly (the §6e
        // contract), and row() panics while row_vals serves.
        let compact = SimMassIndex::open_artifact(&p32).unwrap();
        assert_eq!(compact.value_kind(), ValueKind::F32);
        assert_eq!(compact, heap.quantized());
        std::fs::remove_file(&p64).ok();
        std::fs::remove_file(&p32).ok();
    }

    #[test]
    #[should_panic(expected = "use row_vals")]
    fn f64_row_access_panics_on_compact_artifact() {
        let s = social_graph_from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let sim = SimilarityMatrix::build(&s, &Measure::CommonNeighbors);
        let idx = SimMassIndex::build(&sim, &Partition::singletons(3));
        let path = temp_path("row-panic");
        idx.write_artifact(&path, ValueKind::F32).unwrap();
        let compact = SimMassIndex::open_artifact(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let _ = compact.row(UserId(0));
    }

    #[test]
    fn stream_build_matches_materialized_write_byte_for_byte() {
        let mut edges: Vec<(u32, u32)> = (0..50u32).map(|u| (u, (u + 1) % 50)).collect();
        edges.extend((0..25u32).map(|u| (u, u + 25)));
        let s = social_graph_from_edges(50, &edges).unwrap();
        let sim = SimilarityMatrix::build(&s, &Measure::CommonNeighbors);
        let partition =
            Partition::from_assignment(&(0..50).map(|u| (u % 6) as u32).collect::<Vec<_>>());
        let heap = SimMassIndex::build(&sim, &partition);
        let reference = temp_path("stream-ref");
        heap.write_artifact(&reference, ValueKind::F64).unwrap();
        let want = std::fs::read(&reference).unwrap();
        for chunk_rows in [1, 7, 50, 0] {
            let p = temp_path(&format!("stream-{chunk_rows}"));
            let entries = SimMassIndex::stream_build_artifact(
                &sim,
                &partition,
                &p,
                ValueKind::F64,
                chunk_rows,
            )
            .unwrap();
            assert_eq!(entries as usize, heap.nnz());
            assert_eq!(std::fs::read(&p).unwrap(), want, "chunk_rows={chunk_rows}");
            std::fs::remove_file(&p).ok();
        }
        std::fs::remove_file(&reference).ok();
    }

    #[test]
    fn build_from_mapped_similarity_matches_build_from_heap() {
        let s = social_graph_from_edges(
            9,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (3, 4),
                (4, 5),
                (5, 3),
                (6, 7),
                (7, 8),
                (8, 6),
                (2, 3),
                (5, 6),
            ],
        )
        .unwrap();
        let sim = SimilarityMatrix::build(&s, &Measure::AdamicAdar);
        let partition = Partition::from_assignment(&[0, 1, 2, 0, 1, 2, 0, 1, 2]);
        let sim_path = temp_path("mapped-sim");
        sim.write_artifact(&sim_path, ValueKind::F64).unwrap();
        let mapped_sim = socialrec_similarity::MappedSimilarity::open(&sim_path).unwrap();
        let from_heap = SimMassIndex::build(&sim, &partition);
        let from_mapped = SimMassIndex::build(&mapped_sim, &partition);
        assert_eq!(from_heap, from_mapped, "index must not depend on the similarity backing");
        std::fs::remove_file(&sim_path).ok();
    }

    /// Satellite property: dirty-row index updates across random delta
    /// sequences are bitwise equal to from-scratch rebuilds — both for
    /// similarity-row churn and for cluster moves (including cluster
    /// count changes).
    #[test]
    fn update_rows_matches_full_rebuild_bitwise_across_random_deltas() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        use socialrec_graph::GraphDelta;
        use socialrec_similarity::dirty_rows;

        let n = 80usize;
        let mut rng = SmallRng::seed_from_u64(909);
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for _ in 0..3 {
                let v = rng.gen_range(0..n as u32);
                if v != u {
                    edges.push((u, v));
                }
            }
        }
        let mut g = social_graph_from_edges(n, &edges).unwrap();
        let measure = Measure::AdamicAdar;
        let mut sim = SimilarityMatrix::build_sequential(&g, &measure);
        let mut labels: Vec<u32> = (0..n).map(|u| (u % 5) as u32).collect();
        let mut partition = Partition::from_assignment(&labels);
        let mut idx = SimMassIndex::build(&sim, &partition);

        for round in 0..10 {
            // Graph delta: a few random edge toggles.
            let mut delta = GraphDelta::new();
            for _ in 0..4 {
                let a = rng.gen_range(0..n as u32);
                let b = rng.gen_range(0..n as u32);
                if a == b {
                    continue;
                }
                if g.has_edge(UserId(a), UserId(b)) {
                    delta.remove_social(UserId(a), UserId(b)).unwrap();
                } else {
                    delta.add_social(UserId(a), UserId(b)).unwrap();
                }
            }
            let (g_new, report) = delta.apply_social(&g).unwrap();
            let sim_dirty = dirty_rows(&measure, &g, &g_new, &report.touched);
            let sim_new = sim.update_rows(&g_new, &measure, &sim_dirty);

            // Cluster churn: move a couple of users (sometimes to a
            // brand-new label, changing the cluster count).
            for _ in 0..2 {
                let u = rng.gen_range(0..n);
                labels[u] = rng.gen_range(0..6) as u32;
            }
            let partition_new = Partition::from_assignment(&labels);
            // Relabelling by from_assignment can renumber *everyone*
            // when a low label empties; fold those silent renames into
            // the moved set like a caller tracking label diffs would.
            let moved: Vec<UserId> = (0..n)
                .filter(|&u| {
                    partition.cluster_of(UserId(u as u32))
                        != partition_new.cluster_of(UserId(u as u32))
                })
                .map(|u| UserId(u as u32))
                .collect();

            let dirty = dirty_index_rows(&sim_new, &sim_dirty, &moved);
            let updated = idx.update_rows(&sim_new, &partition_new, &dirty);
            let full = SimMassIndex::build(&sim_new, &partition_new);
            assert_eq!(updated, full, "round {round}: incremental index diverged");

            g = g_new;
            sim = sim_new;
            partition = partition_new;
            idx = updated;
        }
    }

    #[test]
    fn update_rows_with_empty_dirty_set_is_identity() {
        let s =
            social_graph_from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
                .unwrap();
        let sim = SimilarityMatrix::build(&s, &Measure::CommonNeighbors);
        let partition = Partition::from_assignment(&[0, 0, 0, 1, 1, 1]);
        let idx = SimMassIndex::build(&sim, &partition);
        let same = idx.update_rows(&sim, &partition, &[]);
        assert_eq!(same, idx);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_rows_rejects_out_of_bounds() {
        let s = social_graph_from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let sim = SimilarityMatrix::build(&s, &Measure::CommonNeighbors);
        let idx = SimMassIndex::build(&sim, &Partition::singletons(3));
        let _ = idx.slice_rows(1, 4);
    }

    #[test]
    #[should_panic(expected = "partition must cover")]
    fn user_count_mismatch_panics() {
        let s = social_graph_from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let sim = SimilarityMatrix::build(&s, &Measure::CommonNeighbors);
        let partition = Partition::singletons(3);
        let _ = SimMassIndex::build(&sim, &partition);
    }
}
