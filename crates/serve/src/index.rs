//! The precomputed similarity-mass index.
//!
//! Module `A_R` of Algorithm 1 spends, per query, a walk over the whole
//! similarity row of the user (`O(|sim(u)|)`, plus zeroing a
//! `num_clusters`-sized scratch) just to learn how much similarity mass
//! the user has in each cluster. That mapping depends only on the
//! public similarity matrix and the public partition — never on the
//! private release — so a server can compute it once, up front, for
//! every user.
//!
//! [`SimMassIndex`] stores exactly that: a CSR of per-user
//! `(cluster, Σ sim)` pairs, collapsing the per-query cost to one
//! sparse axpy per *touched cluster* (`O(C_u)` rows) instead of one
//! accumulation per similar user.

use socialrec_community::Partition;
use socialrec_graph::UserId;
use socialrec_similarity::csr::assemble_csr;
use socialrec_similarity::SimilarityMatrix;

/// CSR of per-user `(cluster, similarity mass)` pairs.
///
/// Row `u` lists, in ascending cluster id, every cluster holding at
/// least one of `u`'s similar users together with the summed similarity
/// `Σ_{v ∈ sim(u) ∩ c} sim(u, v)`.
///
/// # Floating-point contract
///
/// The masses are accumulated **in the similarity row's neighbor
/// order**, and rows are emitted in ascending cluster order with
/// exact-zero sums dropped — the same additions, in the same order,
/// that [`ClusterFramework::utility_estimates_into`] performs through
/// its dense scratch. Serving through this index is therefore
/// bit-identical to the reference path, not merely close.
///
/// [`ClusterFramework::utility_estimates_into`]:
///     socialrec_core::private::ClusterFramework::utility_estimates_into
#[derive(Clone, Debug, PartialEq)]
pub struct SimMassIndex {
    offsets: Vec<u64>,
    clusters: Vec<u32>,
    masses: Vec<f64>,
    num_clusters: usize,
}

impl SimMassIndex {
    /// Build the index for every user, in parallel.
    ///
    /// Assembly is the two-pass CSR build of `socialrec_similarity::csr`:
    /// each worker reuses one dense cluster scratch and appends rows
    /// straight into its chunk buffer — the per-user row `Vec` the
    /// first-generation builder allocated is gone entirely — then the
    /// flat arrays are written with direct-slot parallel copies.
    /// Bit-identical to [`build_reference`](SimMassIndex::build_reference)
    /// for any thread count.
    ///
    /// Panics if `sim` and `partition` disagree on the user count.
    pub fn build(sim: &SimilarityMatrix, partition: &Partition) -> SimMassIndex {
        let n = sim.num_users();
        assert_eq!(n, partition.num_users(), "partition must cover the similarity matrix's users");
        let nc = partition.num_clusters();
        let parts = assemble_csr(
            n,
            0u32,
            0.0f64,
            || vec![0.0f64; nc],
            |scratch: &mut Vec<f64>, u, cols, vals| {
                let (users, scores) = sim.row(UserId(u as u32));
                // Accumulate in neighbor order (FP contract above).
                for (&v, &s) in users.iter().zip(scores) {
                    scratch[partition.cluster_of(v) as usize] += s;
                }
                for (cl, m) in scratch.iter_mut().enumerate() {
                    if *m != 0.0 {
                        cols.push(cl as u32);
                        vals.push(*m);
                    }
                    *m = 0.0;
                }
            },
        );
        SimMassIndex {
            offsets: parts.offsets,
            clusters: parts.cols,
            masses: parts.vals,
            num_clusters: nc,
        }
    }

    /// Sequential reference for [`build`](SimMassIndex::build): one
    /// thread, one dense scratch, row-major push-down. Retained so the
    /// equivalence tests (and the thread-count matrix) can prove the
    /// parallel two-pass assembly produces the same bytes.
    pub fn build_reference(sim: &SimilarityMatrix, partition: &Partition) -> SimMassIndex {
        let n = sim.num_users();
        assert_eq!(n, partition.num_users(), "partition must cover the similarity matrix's users");
        let nc = partition.num_clusters();
        let mut scratch = vec![0.0f64; nc];
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let mut clusters = Vec::new();
        let mut masses = Vec::new();
        for u in 0..n as u32 {
            let (users, scores) = sim.row(UserId(u));
            for (&v, &s) in users.iter().zip(scores) {
                scratch[partition.cluster_of(v) as usize] += s;
            }
            for (cl, m) in scratch.iter_mut().enumerate() {
                if *m != 0.0 {
                    clusters.push(cl as u32);
                    masses.push(*m);
                }
                *m = 0.0;
            }
            offsets.push(clusters.len() as u64);
        }
        SimMassIndex { offsets, clusters, masses, num_clusters: nc }
    }

    /// The `(clusters, masses)` row for one user.
    #[inline]
    pub fn row(&self, u: UserId) -> (&[u32], &[f64]) {
        let lo = self.offsets[u.index()] as usize;
        let hi = self.offsets[u.index() + 1] as usize;
        (&self.clusters[lo..hi], &self.masses[lo..hi])
    }

    /// Number of indexed users.
    pub fn num_users(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of clusters in the underlying partition.
    pub fn num_clusters(&self) -> usize {
        self.num_clusters
    }

    /// Total stored `(cluster, mass)` pairs.
    pub fn nnz(&self) -> usize {
        self.clusters.len()
    }

    /// An owned copy of rows `[lo, hi)`, rebased so the slice's user
    /// `0` is this index's user `lo` — the per-shard index of the
    /// sharded server. The masses are copied bytes (no re-accumulation),
    /// so serving through a slice preserves the floating-point contract
    /// verbatim.
    ///
    /// Panics if `lo > hi` or `hi` exceeds the user count.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> SimMassIndex {
        assert!(lo <= hi && hi <= self.num_users(), "slice out of bounds");
        let base = self.offsets[lo];
        let offsets: Vec<u64> = self.offsets[lo..=hi].iter().map(|&o| o - base).collect();
        let (start, end) = (self.offsets[lo] as usize, self.offsets[hi] as usize);
        SimMassIndex {
            offsets,
            clusters: self.clusters[start..end].to_vec(),
            masses: self.masses[start..end].to_vec(),
            num_clusters: self.num_clusters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialrec_graph::social::social_graph_from_edges;
    use socialrec_similarity::Measure;

    #[test]
    fn matches_dense_scratch_accumulation() {
        let s =
            social_graph_from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
                .unwrap();
        let sim = SimilarityMatrix::build(&s, &Measure::AdamicAdar);
        let partition = Partition::from_assignment(&[0, 0, 0, 1, 1, 1]);
        let idx = SimMassIndex::build(&sim, &partition);
        assert_eq!(idx.num_users(), 6);
        assert_eq!(idx.num_clusters(), 2);
        for u in 0..6u32 {
            let mut dense = [0.0f64; 2];
            let (vs, ss) = sim.row(UserId(u));
            for (&v, &s) in vs.iter().zip(ss) {
                dense[partition.cluster_of(v) as usize] += s;
            }
            let (cls, ms) = idx.row(UserId(u));
            let mut it = cls.iter().zip(ms);
            for (cl, &want) in dense.iter().enumerate() {
                if want != 0.0 {
                    let (&c, &m) = it.next().expect("row too short");
                    assert_eq!(c, cl as u32);
                    assert_eq!(m.to_bits(), want.to_bits(), "mass differs bitwise");
                }
            }
            assert!(it.next().is_none(), "row has spurious entries");
        }
    }

    #[test]
    fn rows_are_sorted_and_nonzero() {
        let s = social_graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let sim = SimilarityMatrix::build(&s, &Measure::CommonNeighbors);
        let partition = Partition::singletons(5);
        let idx = SimMassIndex::build(&sim, &partition);
        for u in 0..5u32 {
            let (cls, ms) = idx.row(UserId(u));
            assert!(cls.windows(2).all(|w| w[0] < w[1]), "clusters not ascending");
            assert!(ms.iter().all(|&m| m != 0.0));
        }
        assert_eq!(idx.nnz(), idx.masses.len());
    }

    #[test]
    fn two_pass_build_matches_reference_bitwise() {
        // Cycle + chords: varied row lengths, including users whose
        // masses collapse into few clusters.
        let mut edges: Vec<(u32, u32)> = (0..40u32).map(|u| (u, (u + 1) % 40)).collect();
        edges.extend((0..20u32).map(|u| (u, u + 20)));
        let s = social_graph_from_edges(40, &edges).unwrap();
        for measure in [Measure::CommonNeighbors, Measure::AdamicAdar] {
            let sim = SimilarityMatrix::build_sequential(&s, &measure);
            for partition in [
                Partition::from_assignment(&(0..40).map(|u| (u % 5) as u32).collect::<Vec<_>>()),
                Partition::singletons(40),
                Partition::one_cluster(40),
            ] {
                let par = SimMassIndex::build(&sim, &partition);
                let refr = SimMassIndex::build_reference(&sim, &partition);
                assert_eq!(par.offsets, refr.offsets);
                assert_eq!(par.clusters, refr.clusters);
                assert_eq!(par.masses.len(), refr.masses.len());
                for (a, b) in par.masses.iter().zip(&refr.masses) {
                    assert_eq!(a.to_bits(), b.to_bits(), "mass differs bitwise");
                }
            }
        }
    }

    #[test]
    fn slice_rows_rebases_and_preserves_bits() {
        let s =
            social_graph_from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
                .unwrap();
        let sim = SimilarityMatrix::build(&s, &Measure::AdamicAdar);
        let partition = Partition::from_assignment(&[0, 1, 0, 1, 0, 1]);
        let full = SimMassIndex::build(&sim, &partition);
        // Shard-style cover: [0,2), [2,4), [4,6).
        for lo in [0usize, 2, 4] {
            let slice = full.slice_rows(lo, lo + 2);
            assert_eq!(slice.num_users(), 2);
            assert_eq!(slice.num_clusters(), full.num_clusters());
            for local in 0..2u32 {
                let (gc, gm) = full.row(UserId(lo as u32 + local));
                let (sc, sm) = slice.row(UserId(local));
                assert_eq!(gc, sc);
                for (a, b) in gm.iter().zip(sm) {
                    assert_eq!(a.to_bits(), b.to_bits(), "sliced mass differs bitwise");
                }
            }
        }
        // Degenerate slices are fine; out-of-bounds is not.
        assert_eq!(full.slice_rows(3, 3).num_users(), 0);
        assert_eq!(full.slice_rows(0, 6).nnz(), full.nnz());
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_rows_rejects_out_of_bounds() {
        let s = social_graph_from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let sim = SimilarityMatrix::build(&s, &Measure::CommonNeighbors);
        let idx = SimMassIndex::build(&sim, &Partition::singletons(3));
        let _ = idx.slice_rows(1, 4);
    }

    #[test]
    #[should_panic(expected = "partition must cover")]
    fn user_count_mismatch_panics() {
        let s = social_graph_from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let sim = SimilarityMatrix::build(&s, &Measure::CommonNeighbors);
        let partition = Partition::singletons(3);
        let _ = SimMassIndex::build(&sim, &partition);
    }
}
