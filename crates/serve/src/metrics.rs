//! Hand-rolled serving metrics: lock-free counters and a log-bucketed
//! latency histogram, built only on `std` atomics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets: bucket `i` covers
/// `[2^i, 2^(i+1))` nanoseconds, so 48 buckets reach ~78 hours.
const BUCKETS: usize = 48;

/// A log₂-bucketed latency histogram.
///
/// Recording is a single relaxed atomic increment, so worker threads
/// can record from inside a parallel batch without contention beyond
/// the cache line of their bucket.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    total_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            total_nanos: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// A fresh, empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    #[inline]
    fn bucket_of(nanos: u64) -> usize {
        // 0ns and 1ns land in bucket 0; otherwise floor(log2(nanos)).
        (63 - nanos.max(1).leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Record one latency observation.
    #[inline]
    pub fn record(&self, d: Duration) {
        let nanos = d.as_nanos().min(u64::MAX as u128) as u64;
        self.buckets[Self::bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Mean recorded latency (zero when empty).
    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.total_nanos.load(Ordering::Relaxed) / n)
    }

    /// Upper bound of the bucket holding the `q`-quantile observation
    /// (`q` in `[0, 1]`); zero when empty. Bucketing bounds the error to
    /// a factor of two, which is plenty for spotting tail blow-ups.
    pub fn quantile(&self, q: f64) -> Duration {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let n: u64 = counts.iter().sum();
        if n == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Duration::from_nanos(1u64 << (i + 1).min(63));
            }
        }
        Duration::from_nanos(u64::MAX)
    }
}

/// Counters for one [`RecommendationServer`](crate::RecommendationServer).
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Individual user queries served (batch rows and singles).
    queries: AtomicU64,
    /// `recommend_batch` invocations.
    batches: AtomicU64,
    /// `recommend_one` invocations (direct path; not counted as
    /// batches, so batch counters stay meaningful at serving scale).
    singles: AtomicU64,
    /// Release lookups (batch or single) answered from the cache.
    cache_hits: AtomicU64,
    /// Release lookups that had to rebuild the noisy release.
    cache_rebuilds: AtomicU64,
    /// Per-query utility-estimation + top-N latency.
    query_latency: LatencyHistogram,
    /// Whole-batch latency (release lookup + all queries).
    batch_latency: LatencyHistogram,
}

/// A point-in-time copy of the counters, for reporting.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    /// Individual user queries served (batch rows and singles).
    pub queries: u64,
    /// `recommend_batch` invocations.
    pub batches: u64,
    /// `recommend_one` invocations (direct single-query path).
    pub singles: u64,
    /// Release lookups answered from the cache.
    pub cache_hits: u64,
    /// Release lookups that rebuilt the noisy release.
    pub cache_rebuilds: u64,
    /// Mean per-query latency.
    pub query_mean: Duration,
    /// ~p50 per-query latency (bucket upper bound).
    pub query_p50: Duration,
    /// ~p99 per-query latency (bucket upper bound).
    pub query_p99: Duration,
    /// Mean batch latency.
    pub batch_mean: Duration,
    /// ~p50 batch latency (bucket upper bound).
    pub batch_p50: Duration,
    /// ~p99 batch latency (bucket upper bound).
    pub batch_p99: Duration,
}

impl ServeMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> ServeMetrics {
        ServeMetrics::default()
    }

    pub(crate) fn record_query(&self, d: Duration) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.query_latency.record(d);
    }

    pub(crate) fn record_batch(&self, d: Duration, cache_hit: bool) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.record_cache(cache_hit);
        self.batch_latency.record(d);
    }

    /// One `recommend_one` call: counted as a query and a single, never
    /// as a batch; its end-to-end latency (release lookup + utilities +
    /// top-N) goes into the query histogram.
    pub(crate) fn record_single(&self, d: Duration, cache_hit: bool) {
        self.singles.fetch_add(1, Ordering::Relaxed);
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.record_cache(cache_hit);
        self.query_latency.record(d);
    }

    fn record_cache(&self, cache_hit: bool) {
        if cache_hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_rebuilds.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The per-query latency histogram.
    pub fn query_latency(&self) -> &LatencyHistogram {
        &self.query_latency
    }

    /// The per-batch latency histogram.
    pub fn batch_latency(&self) -> &LatencyHistogram {
        &self.batch_latency
    }

    /// Copy the counters out for reporting.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            singles: self.singles.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_rebuilds: self.cache_rebuilds.load(Ordering::Relaxed),
            query_mean: self.query_latency.mean(),
            query_p50: self.query_latency.quantile(0.5),
            query_p99: self.query_latency.quantile(0.99),
            batch_mean: self.batch_latency.mean(),
            batch_p50: self.batch_latency.quantile(0.5),
            batch_p99: self.batch_latency.quantile(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 0);
        assert_eq!(LatencyHistogram::bucket_of(2), 1);
        assert_eq!(LatencyHistogram::bucket_of(3), 1);
        assert_eq!(LatencyHistogram::bucket_of(1024), 10);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        for _ in 0..99 {
            h.record(Duration::from_nanos(100)); // bucket 6: [64, 128)
        }
        h.record(Duration::from_micros(100)); // bucket 16
        assert_eq!(h.count(), 100);
        // Median sits in the 100ns bucket, the tail in the 100µs one.
        assert_eq!(h.quantile(0.5), Duration::from_nanos(128));
        assert!(h.quantile(1.0) >= Duration::from_micros(100));
        let m = h.mean();
        assert!(m > Duration::from_nanos(100) && m < Duration::from_micros(2));
    }

    #[test]
    fn metrics_snapshot_tracks_counts() {
        let m = ServeMetrics::new();
        m.record_batch(Duration::from_millis(2), false);
        m.record_batch(Duration::from_millis(1), true);
        for _ in 0..5 {
            m.record_query(Duration::from_micros(3));
        }
        let s = m.snapshot();
        assert_eq!(s.batches, 2);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_rebuilds, 1);
        assert_eq!(s.queries, 5);
        assert_eq!(s.singles, 0);
        assert!(s.query_mean > Duration::ZERO);
        assert!(s.query_p99 >= s.query_p50);
        assert!(s.batch_p99 >= s.batch_p50);
    }

    #[test]
    fn singles_count_as_queries_not_batches() {
        let m = ServeMetrics::new();
        m.record_single(Duration::from_micros(7), false);
        m.record_single(Duration::from_micros(2), true);
        let s = m.snapshot();
        assert_eq!(s.singles, 2);
        assert_eq!(s.queries, 2);
        assert_eq!(s.batches, 0, "singles must not pollute batch counters");
        assert_eq!(s.batch_mean, Duration::ZERO);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_rebuilds, 1);
        assert!(s.query_p50 > Duration::ZERO);
    }
}
