//! The sharded, coalescing serving daemon.
//!
//! [`ShardedServer`] is the front door ROADMAP item 1 asks for: the
//! user space is split into contiguous ranges — **shards** — and each
//! shard owns a rebased slice of the [`SimMassIndex`], its own
//! [`EpochCell`] onto the current release, and its own
//! [`AdmissionQueue`]. Queries touch only their shard's state, so
//! shards scale without sharing anything but the release itself:
//!
//! * **Admission** — [`recommend_one`](ShardedServer::recommend_one)
//!   enqueues on the user's shard; concurrent singles coalesce into one
//!   batch that rides the item-tiled kernel (`kernel.rs`), amortizing
//!   release lookup and tile traversal that the uncoalesced path pays
//!   per query.
//! * **Hot swap** — the noisy release is owned by one daemon-wide
//!   [`ReleaseExchange`]; a generation change (seed / ε / partition
//!   bump) is built exactly once while every shard keeps serving its
//!   current epoch, then each shard flips its [`EpochCell`] on its next
//!   query. The exchange retains the predecessor generation, so
//!   in-flight traffic admitted before the swap completes without a
//!   re-release. Each response is computed wholly from the release of
//!   the generation its seed hashes to — responses never mix
//!   generations — and the privacy ledger is stamped exactly once per
//!   new generation, no matter how many shards or threads race.
//! * **Metrics** — every shard registers named counters
//!   (`serve.shard<i>.queries`, `.admissions`, `.coalesced`,
//!   `.kernel_blocks`, `.release_swaps`), a `.generation` gauge, and a
//!   `.query_ns` latency histogram in the daemon's own
//!   [`MetricsRegistry`], so load skew and coalescing efficiency are
//!   visible per shard.
//!
//! # Floating-point contract
//!
//! Sharding and coalescing are both invisible to the output bits. The
//! per-shard index slices are copied bytes of the full index
//! ([`SimMassIndex::slice_rows`]), each user's utilities are accumulated
//! independently by the kernel regardless of batch composition, and
//! top-N selection is the shared [`top_n_items`]. Every path through
//! this module is bit-identical to `ClusterFramework::recommend` — the
//! serving layer adds zero accuracy loss on top of DP noise.

use crate::cache::{partition_fingerprint, release_generation};
use crate::coalesce::{AdmissionQueue, PendingQuery};
use crate::hotswap::{EpochCell, ReleaseExchange};
use crate::kernel;
use crate::SimMassIndex;
use rayon::prelude::*;
use socialrec_community::Partition;
use socialrec_core::private::framework::{ClusterFramework, NoiseModel, NoisyClusterAverages};
use socialrec_core::{top_n_items, RecommenderInputs, TopN, TopNRecommender};
use socialrec_dp::Epsilon;
use socialrec_graph::UserId;
use socialrec_obs::journal::{self, EventKind};
use socialrec_obs::{span, Counter, Gauge, LatencyHistogram, LiveTelemetry, MetricsRegistry};
use socialrec_similarity::SimilarityMatrix;
use std::sync::Arc;
use std::time::Instant;

/// One user-range shard: a rebased index slice plus all serving state
/// for its users.
struct Shard {
    /// First (global) user id this shard owns.
    first_user: u32,
    /// Rows `[first_user, first_user + index.num_users())` of the full
    /// index, rebased to local user `0`.
    index: SimMassIndex,
    /// The release epoch this shard is currently serving.
    epoch: EpochCell,
    /// Flat-combining admission for single queries.
    queue: AdmissionQueue,
    /// Individual queries served (coalesced singles and batch rows).
    queries: Arc<Counter>,
    /// Leader executions — drained admission batches.
    admissions: Arc<Counter>,
    /// Queries that shared an admission batch with at least one other
    /// (batch size > 1). `coalesced / queries` is the coalescing rate;
    /// `queries / admissions` the mean ride size.
    coalesced: Arc<Counter>,
    /// Item-tiled kernel invocations (user blocks).
    kernel_blocks: Arc<Counter>,
    /// Epoch-cell flips (release swaps observed by this shard).
    release_swaps: Arc<Counter>,
    /// The generation currently in the epoch cell (as `i64` bits).
    generation: Arc<Gauge>,
    /// Admission backlog observed at enqueue time (queries pending a
    /// leader when this one arrived).
    queue_depth: Arc<Gauge>,
    /// End-to-end single-query latency (admission to answer).
    latency: Arc<LatencyHistogram>,
}

/// The sharded, coalescing serving daemon. See the module docs.
pub struct ShardedServer<'p> {
    framework: ClusterFramework<'p>,
    fingerprint: u64,
    exchange: ReleaseExchange,
    shards: Vec<Shard>,
    /// Users per shard (last shard may be ragged).
    chunk: usize,
    registry: Arc<MetricsRegistry>,
}

impl<'p> ShardedServer<'p> {
    /// Build a daemon over `num_shards` contiguous user ranges. `sim`
    /// must be the same matrix later passed inside
    /// [`RecommenderInputs`] to the query methods. `num_shards` is
    /// clamped to `[1, num_users]` (a 0-user partition gets 0 shards).
    pub fn new(
        partition: &'p Partition,
        sim: &SimilarityMatrix,
        epsilon: Epsilon,
        num_shards: usize,
    ) -> ShardedServer<'p> {
        Self::from_index(partition, SimMassIndex::build(sim, partition), epsilon, num_shards)
    }

    /// Build a daemon from a prebuilt [`SimMassIndex`] — typically one
    /// opened from an mmap-able artifact
    /// ([`SimMassIndex::open_artifact`]), in which case the per-shard
    /// `slice_rows` calls are O(1) windows over the shared mapping and
    /// no index bytes are duplicated. The index must cover exactly
    /// `partition`'s users and have been built against that partition.
    pub fn from_index(
        partition: &'p Partition,
        full: SimMassIndex,
        epsilon: Epsilon,
        num_shards: usize,
    ) -> ShardedServer<'p> {
        let n = partition.num_users();
        assert_eq!(full.num_users(), n, "index must cover the partition's users");
        assert_eq!(
            full.num_clusters(),
            partition.num_clusters(),
            "index was built against a different partition"
        );
        let chunk = n.div_ceil(num_shards.clamp(1, n.max(1))).max(1);
        let registry = Arc::new(MetricsRegistry::new());
        let shards = (0..n.div_ceil(chunk))
            .map(|s| {
                let (lo, hi) = (s * chunk, ((s + 1) * chunk).min(n));
                Shard {
                    first_user: lo as u32,
                    index: full.slice_rows(lo, hi),
                    epoch: EpochCell::new(),
                    queue: AdmissionQueue::new(),
                    queries: registry.counter(format!("serve.shard{s}.queries")),
                    admissions: registry.counter(format!("serve.shard{s}.admissions")),
                    coalesced: registry.counter(format!("serve.shard{s}.coalesced")),
                    kernel_blocks: registry.counter(format!("serve.shard{s}.kernel_blocks")),
                    release_swaps: registry.counter(format!("serve.shard{s}.release_swaps")),
                    generation: registry.gauge(format!("serve.shard{s}.generation")),
                    queue_depth: registry.gauge(format!("serve.shard{s}.queue_depth")),
                    latency: registry.histogram(format!("serve.shard{s}.query_ns")),
                }
            })
            .collect();
        ShardedServer {
            framework: ClusterFramework::new(partition, epsilon),
            fingerprint: partition_fingerprint(partition),
            exchange: ReleaseExchange::new(),
            shards,
            chunk,
            registry,
        }
    }

    /// Select the noise distribution (default: Laplace). Changing it
    /// changes the release generation, so the next query hot-swaps.
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.framework = self.framework.with_noise(noise);
        self
    }

    /// The underlying framework (partition, ε, noise model).
    pub fn framework(&self) -> &ClusterFramework<'p> {
        &self.framework
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `user`.
    pub fn shard_of(&self, user: UserId) -> usize {
        user.index() / self.chunk
    }

    /// The daemon's metrics registry (per-shard counters live here).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// A shared handle to the registry (e.g. for an
    /// [`socialrec_obs::IntrospectionServer`], which outlives borrows
    /// of the daemon).
    pub fn registry_handle(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.registry)
    }

    /// The daemon-wide release exchange (epoch counter, retained
    /// generations).
    pub fn exchange(&self) -> &ReleaseExchange {
        &self.exchange
    }

    /// The generation each shard's epoch cell currently serves
    /// (`None` until a shard's first query).
    pub fn shard_generations(&self) -> Vec<Option<u64>> {
        self.shards.iter().map(|s| s.epoch.generation()).collect()
    }

    /// The release generation queries with `seed` resolve to.
    pub fn generation_for(&self, seed: u64) -> u64 {
        release_generation(
            self.fingerprint,
            self.framework.epsilon(),
            self.framework.noise_model(),
            seed,
        )
    }

    /// Hot-swap an externally produced release into the daemon under
    /// live load: the release for `seed` — typically from
    /// `DynamicRecommender::release_averages`, whose accountant already
    /// debited the spend — becomes the ready generation in the
    /// exchange, so queries carrying `seed` flip to it on their next
    /// admission *without* triggering an on-miss `serve.rebuild` (which
    /// would spend the privacy budget a second time). Queries for older
    /// retained generations keep being answered throughout.
    ///
    /// Returns the generation id queries with `seed` resolve to. The
    /// averages must come from this daemon's partition, ε, and noise
    /// model with `seed` — the generation key encodes exactly those —
    /// otherwise served bits would not match the generation contract.
    /// Publishing an already-present generation is a no-op.
    pub fn publish_release(&self, seed: u64, averages: NoisyClusterAverages) -> u64 {
        let _span = span!("update.publish");
        assert_eq!(
            averages.num_clusters(),
            self.framework.partition().num_clusters(),
            "published release was built against a different partition"
        );
        let generation = self.generation_for(seed);
        if self.exchange.publish(generation, Arc::new(averages)) && socialrec_obs::enabled() {
            // The producing release recorded its spend in the privacy
            // ledger; stamp that record with the generation now serving
            // it, mirroring the on-miss build path.
            socialrec_obs::PrivacyLedger::global().stamp_generation(generation);
        }
        generation
    }

    /// The release for `seed`, from the shard's epoch cell when
    /// current, otherwise from the exchange (building at most once
    /// daemon-wide and stamping the ledger on that one build) followed
    /// by an epoch flip of this shard.
    fn release_for(
        &self,
        shard: &Shard,
        inputs: &RecommenderInputs<'_>,
        seed: u64,
    ) -> Arc<NoisyClusterAverages> {
        let generation = self.generation_for(seed);
        if let Some(averages) = shard.epoch.load(generation) {
            return averages;
        }
        let (averages, built) = self.exchange.get_or_build(generation, || {
            let _span = span!("serve.rebuild");
            self.framework.noisy_cluster_averages(inputs, seed)
        });
        if built && socialrec_obs::enabled() {
            // The build just recorded a release in the privacy ledger
            // (via the core release kernel); stamp it with the
            // generation that consumed it. `built` is true exactly once
            // per generation, so the ledger shows one spend per swap.
            socialrec_obs::PrivacyLedger::global().stamp_generation(generation);
        }
        shard.epoch.store(generation, Arc::clone(&averages));
        shard.release_swaps.inc();
        shard.generation.set(generation as i64);
        journal::emit(
            EventKind::HotSwapCompleted,
            (shard.first_user as usize / self.chunk) as u64,
            generation,
        );
        averages
    }

    /// Execute one drained admission batch on `shard`, fulfilling every
    /// pending query. Queries are grouped by seed (= release
    /// generation) in first-seen order — a kernel call never spans
    /// generations — and each group rides the item-tiled kernel in
    /// [`kernel::USER_BLOCK`] blocks.
    fn run_coalesced(&self, shard: &Shard, inputs: &RecommenderInputs<'_>, batch: &[PendingQuery]) {
        let _span = span!("serve.coalesced", queries = batch.len());
        shard.admissions.inc();
        shard.queries.add(batch.len() as u64);
        if batch.len() > 1 {
            shard.coalesced.add(batch.len() as u64);
        }
        let mut groups: Vec<(u64, Vec<&PendingQuery>)> = Vec::new();
        for q in batch {
            match groups.iter_mut().find(|(s, _)| *s == q.seed()) {
                Some((_, g)) => g.push(q),
                None => groups.push((q.seed(), vec![q])),
            }
        }
        let mut buf = Vec::new();
        let mut locals = Vec::with_capacity(kernel::USER_BLOCK);
        for (seed, group) in groups {
            let averages = self.release_for(shard, inputs, seed);
            let ni = averages.num_items();
            for block in group.chunks(kernel::USER_BLOCK) {
                locals.clear();
                locals.extend(block.iter().map(|q| UserId(q.user().0 - shard.first_user)));
                kernel::utilities_block_tiled(
                    &averages,
                    &shard.index,
                    &locals,
                    kernel::ITEM_TILE,
                    &mut buf,
                );
                shard.kernel_blocks.inc();
                for (k, q) in block.iter().enumerate() {
                    let items = top_n_items(&buf[k * ni..(k + 1) * ni], q.n());
                    q.fulfill(TopN { user: q.user(), items });
                }
            }
        }
    }

    /// A single-user query through the coalescing admission path.
    ///
    /// The query is enqueued on its user's shard; whichever admitted
    /// thread wins the shard's combiner lock executes every pending
    /// query as one kernel batch. Bit-identical to the same query
    /// served alone (and to `ClusterFramework::recommend`).
    pub fn recommend_one(
        &self,
        inputs: &RecommenderInputs<'_>,
        user: UserId,
        n: usize,
        seed: u64,
    ) -> TopN {
        let shard = &self.shards[self.shard_of(user)];
        shard.queue_depth.set(shard.queue.depth() as i64);
        let start = Instant::now();
        let top =
            shard.queue.submit(user, n, seed, |batch| self.run_coalesced(shard, inputs, batch));
        let elapsed = start.elapsed();
        shard.latency.record(elapsed);
        if socialrec_obs::live_armed() {
            LiveTelemetry::global().record_query(elapsed);
        }
        top
    }

    /// Top-N recommendations for a batch of users, fanned out across
    /// shards and user blocks in parallel. Output order matches
    /// `users`; bits match `ClusterFramework::recommend`.
    pub fn recommend_batch(
        &self,
        inputs: &RecommenderInputs<'_>,
        users: &[UserId],
        n: usize,
        seed: u64,
    ) -> Vec<TopN> {
        let _span = span!("serve.shard_batch", users = users.len());
        let mut routed: Vec<Vec<(usize, UserId)>> = vec![Vec::new(); self.shards.len()];
        for (pos, &u) in users.iter().enumerate() {
            routed[self.shard_of(u)].push((pos, u));
        }
        // Resolve the release up front (one build, however many shards
        // are touched) so the parallel region below never stalls on it.
        for (si, r) in routed.iter().enumerate() {
            if !r.is_empty() {
                self.release_for(&self.shards[si], inputs, seed);
                self.shards[si].queries.add(r.len() as u64);
            }
        }
        let mut tasks: Vec<(usize, &[(usize, UserId)])> = Vec::new();
        for (si, r) in routed.iter().enumerate() {
            for block in r.chunks(kernel::USER_BLOCK) {
                tasks.push((si, block));
            }
        }
        let computed: Vec<Vec<(usize, TopN)>> = (0..tasks.len())
            .into_par_iter()
            .map_init(Vec::new, |buf, t| {
                let (si, block) = tasks[t];
                let shard = &self.shards[si];
                let averages = self.release_for(shard, inputs, seed);
                let ni = averages.num_items();
                let locals: Vec<UserId> =
                    block.iter().map(|&(_, u)| UserId(u.0 - shard.first_user)).collect();
                kernel::utilities_block_tiled(
                    &averages,
                    &shard.index,
                    &locals,
                    kernel::ITEM_TILE,
                    buf,
                );
                shard.kernel_blocks.inc();
                block
                    .iter()
                    .enumerate()
                    .map(|(k, &(pos, u))| {
                        (pos, TopN { user: u, items: top_n_items(&buf[k * ni..(k + 1) * ni], n) })
                    })
                    .collect()
            })
            .collect();
        let mut out: Vec<Option<TopN>> = users.iter().map(|_| None).collect();
        for (pos, top) in computed.into_iter().flatten() {
            out[pos] = Some(top);
        }
        out.into_iter().map(|t| t.expect("every routed query is answered")).collect()
    }
}

impl TopNRecommender for ShardedServer<'_> {
    fn name(&self) -> String {
        format!("shards({}, {})", self.shards.len(), self.framework.name())
    }

    fn recommend(
        &self,
        inputs: &RecommenderInputs<'_>,
        users: &[UserId],
        n: usize,
        seed: u64,
    ) -> Vec<TopN> {
        self.recommend_batch(inputs, users, n, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialrec_graph::preference::preference_graph_from_edges;
    use socialrec_graph::social::social_graph_from_edges;
    use socialrec_similarity::Measure;

    fn fixture() -> (socialrec_graph::SocialGraph, socialrec_graph::PreferenceGraph) {
        let s =
            social_graph_from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
                .unwrap();
        let p = preference_graph_from_edges(
            6,
            4,
            &[(0, 0), (1, 0), (2, 0), (3, 1), (4, 1), (5, 1), (1, 2), (4, 3)],
        )
        .unwrap();
        (s, p)
    }

    fn assert_bits(got: &[TopN], want: &[TopN]) {
        assert_eq!(got, want);
        for (g, w) in got.iter().zip(want) {
            for ((gi, gu), (wi, wu)) in g.items.iter().zip(&w.items) {
                assert_eq!(gi, wi);
                assert_eq!(gu.to_bits(), wu.to_bits(), "utility bits differ");
            }
        }
    }

    #[test]
    fn sharded_batch_matches_framework_bitwise_for_every_shard_count() {
        let (s, p) = fixture();
        let sim = SimilarityMatrix::build(&s, &Measure::CommonNeighbors);
        let inputs = RecommenderInputs { prefs: &p, sim: &sim };
        let partition = Partition::from_assignment(&[0, 0, 1, 1, 0, 1]);
        let users: Vec<UserId> = (0..6).map(UserId).collect();
        let fw = ClusterFramework::new(&partition, Epsilon::Finite(0.5));
        let want = fw.recommend(&inputs, &users, 3, 42);
        for num_shards in [1, 2, 3, 6, 100] {
            let daemon = ShardedServer::new(&partition, &sim, Epsilon::Finite(0.5), num_shards);
            assert!(daemon.num_shards() <= 6);
            let got = daemon.recommend_batch(&inputs, &users, 3, 42);
            assert_bits(&got, &want);
        }
    }

    /// Tentpole: a daemon sharding an mmap-backed index (O(1) window
    /// slices over one shared mapping) answers bit-identically to the
    /// heap-built daemon, for single queries and batches alike.
    #[test]
    fn mmap_backed_daemon_matches_heap_daemon_bitwise() {
        use socialrec_similarity::ValueKind;
        let (s, p) = fixture();
        let sim = SimilarityMatrix::build(&s, &Measure::CommonNeighbors);
        let inputs = RecommenderInputs { prefs: &p, sim: &sim };
        let partition = Partition::from_assignment(&[0, 0, 1, 1, 0, 1]);
        let users: Vec<UserId> = (0..6).map(UserId).collect();

        let full = SimMassIndex::build(&sim, &partition);
        let dir = std::env::temp_dir().join("socialrec-shard-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("daemon-{}.srart", std::process::id()));
        full.write_artifact(&path, ValueKind::F64).unwrap();

        for num_shards in [1, 3, 6] {
            let heap = ShardedServer::new(&partition, &sim, Epsilon::Finite(0.5), num_shards);
            let mapped_index = SimMassIndex::open_artifact(&path).unwrap();
            let mapped = ShardedServer::from_index(
                &partition,
                mapped_index,
                Epsilon::Finite(0.5),
                num_shards,
            );
            let want = heap.recommend_batch(&inputs, &users, 3, 42);
            let got = mapped.recommend_batch(&inputs, &users, 3, 42);
            assert_bits(&got, &want);
            for &u in &users {
                let one = mapped.recommend_one(&inputs, u, 3, 42);
                let row = want.iter().find(|t| t.user == u).unwrap();
                assert_bits(std::slice::from_ref(&one), std::slice::from_ref(row));
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn coalesced_single_matches_batch_row_bitwise() {
        let (s, p) = fixture();
        let sim = SimilarityMatrix::build(&s, &Measure::AdamicAdar);
        let inputs = RecommenderInputs { prefs: &p, sim: &sim };
        let partition = Partition::one_cluster(6);
        let daemon = ShardedServer::new(&partition, &sim, Epsilon::Infinite, 3);
        let users: Vec<UserId> = (0..6).map(UserId).collect();
        let batch = daemon.recommend_batch(&inputs, &users, 2, 0);
        for &u in &users {
            let single = daemon.recommend_one(&inputs, u, 2, 0);
            let row = batch.iter().find(|t| t.user == u).unwrap();
            assert_bits(std::slice::from_ref(&single), std::slice::from_ref(row));
        }
    }

    #[test]
    fn shard_routing_covers_every_user_once() {
        let (s, _) = fixture();
        let sim = SimilarityMatrix::build(&s, &Measure::CommonNeighbors);
        let partition = Partition::singletons(6);
        let daemon = ShardedServer::new(&partition, &sim, Epsilon::Finite(1.0), 4);
        // 6 users over ≤4 shards: chunk = 2 → 3 shards of 2.
        assert_eq!(daemon.num_shards(), 3);
        let mut per_shard = vec![0usize; daemon.num_shards()];
        for u in 0..6u32 {
            per_shard[daemon.shard_of(UserId(u))] += 1;
        }
        assert_eq!(per_shard, vec![2, 2, 2]);
    }

    #[test]
    fn hot_swap_builds_once_and_flips_every_shard() {
        let (s, p) = fixture();
        let sim = SimilarityMatrix::build(&s, &Measure::CommonNeighbors);
        let inputs = RecommenderInputs { prefs: &p, sim: &sim };
        let partition = Partition::from_assignment(&[0, 0, 0, 1, 1, 1]);
        let daemon = ShardedServer::new(&partition, &sim, Epsilon::Finite(1.0), 3);
        let users: Vec<UserId> = (0..6).map(UserId).collect();

        daemon.recommend_batch(&inputs, &users, 2, 1);
        assert_eq!(daemon.exchange().epoch(), 1, "one build for however many shards");
        let gen1 = daemon.generation_for(1);
        assert_eq!(daemon.shard_generations(), vec![Some(gen1); 3]);

        // Seed bump = hot swap: one more build, every touched shard
        // flips, and the old generation stays retained for stragglers.
        daemon.recommend_batch(&inputs, &users, 2, 2);
        let gen2 = daemon.generation_for(2);
        assert_eq!(daemon.exchange().epoch(), 2);
        assert_eq!(daemon.shard_generations(), vec![Some(gen2); 3]);
        assert_eq!(daemon.exchange().retained(), vec![gen1, gen2]);

        // A straggler for the old seed is answered without a rebuild.
        let straggler = daemon.recommend_one(&inputs, UserId(0), 2, 1);
        assert_eq!(straggler.user, UserId(0));
        assert_eq!(daemon.exchange().epoch(), 2, "straggler must not re-release");

        let snap = daemon.registry().snapshot();
        let swaps: u64 = snap
            .counters
            .iter()
            .filter(|(n, _)| n.ends_with(".release_swaps"))
            .map(|(_, v)| *v)
            .sum();
        // 3 shards × 2 generations + shard 0's flip back for the
        // straggler.
        assert_eq!(swaps, 7);
    }

    /// Tentpole: a refreshed release produced outside the daemon (the
    /// `DynamicRecommender` path, with the accountant already debited)
    /// hot-swaps in via `publish_release` and is served bit-identically
    /// with no on-miss rebuild, while stragglers on the previous
    /// generation keep being answered.
    #[test]
    fn published_release_hot_swaps_without_rebuild() {
        use socialrec_core::private::framework::release_noisy_cluster_averages_with;
        let (s, p) = fixture();
        let sim = SimilarityMatrix::build(&s, &Measure::CommonNeighbors);
        let inputs = RecommenderInputs { prefs: &p, sim: &sim };
        let partition = Partition::from_assignment(&[0, 0, 1, 1, 0, 1]);
        let daemon = ShardedServer::new(&partition, &sim, Epsilon::Finite(0.5), 3);
        let users: Vec<UserId> = (0..6).map(UserId).collect();

        daemon.recommend_batch(&inputs, &users, 3, 1);
        assert_eq!(daemon.exchange().epoch(), 1);

        // An incremental refresh produced this release out-of-band.
        let refreshed = release_noisy_cluster_averages_with(
            &partition,
            &p,
            Epsilon::Finite(0.5),
            daemon.framework().noise_model(),
            2,
        );
        let gen2 = daemon.publish_release(2, refreshed);
        assert_eq!(gen2, daemon.generation_for(2));
        assert_eq!(daemon.exchange().epoch(), 2, "the publish is the epoch flip");

        // Queries for the new seed flip to the published generation —
        // no serve.rebuild — and their bits match the framework.
        let fw = ClusterFramework::new(&partition, Epsilon::Finite(0.5));
        let want = fw.recommend(&inputs, &users, 3, 2);
        let got = daemon.recommend_batch(&inputs, &users, 3, 2);
        assert_bits(&got, &want);
        assert_eq!(daemon.exchange().epoch(), 2, "served from the published release");
        assert_eq!(daemon.shard_generations(), vec![Some(gen2); 3]);

        // Stragglers on the prior generation are still answered.
        let straggler = daemon.recommend_one(&inputs, UserId(0), 3, 1);
        assert_eq!(straggler.user, UserId(0));
        assert_eq!(daemon.exchange().epoch(), 2, "straggler must not re-release");

        // Republishing the same seed is a no-op.
        assert_eq!(daemon.publish_release(2, fw.noisy_cluster_averages(&inputs, 2)), gen2);
        assert_eq!(daemon.exchange().epoch(), 2);
    }

    #[test]
    fn per_shard_metrics_count_queries_and_admissions() {
        let (s, p) = fixture();
        let sim = SimilarityMatrix::build(&s, &Measure::CommonNeighbors);
        let inputs = RecommenderInputs { prefs: &p, sim: &sim };
        let partition = Partition::from_assignment(&[0, 1, 0, 1, 0, 1]);
        let daemon = ShardedServer::new(&partition, &sim, Epsilon::Finite(0.7), 2);
        let users: Vec<UserId> = (0..6).map(UserId).collect();
        daemon.recommend_batch(&inputs, &users, 2, 5);
        daemon.recommend_one(&inputs, UserId(0), 2, 5);
        daemon.recommend_one(&inputs, UserId(5), 2, 5);
        let snap = daemon.registry().snapshot();
        let get = |name: &str| {
            snap.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or_default()
        };
        assert_eq!(get("serve.shard0.queries"), 3 + 1);
        assert_eq!(get("serve.shard1.queries"), 3 + 1);
        assert_eq!(get("serve.shard0.admissions"), 1);
        assert_eq!(get("serve.shard1.admissions"), 1);
        let hist = snap.histograms.iter().find(|(n, _)| n == "serve.shard0.query_ns").unwrap();
        assert_eq!(hist.1.count, 1, "single-query latency recorded per shard");
    }
}
