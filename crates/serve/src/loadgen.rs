//! Load-generator primitives for `serve-bench`.
//!
//! The serving daemon is judged under realistic request mixes, which
//! the vendored `rand` (a plain xoshiro256++) cannot synthesize on its
//! own, so the two distributions live here:
//!
//! * [`Zipf`] — user popularity. Real recommendation traffic is heavily
//!   skewed (a small head of users issues most queries), which is
//!   exactly the regime where per-shard coalescing pays: hot shards see
//!   deep admission queues. Sampling is inverse-CDF over precomputed
//!   cumulative weights `(k+1)^-s`, one binary search per draw.
//! * [`poisson_interarrival`] — open-loop arrivals. Closed-loop driving
//!   (every client fires as fast as the server answers) hides queueing
//!   delay; an open loop with exponential inter-arrival times at a
//!   fixed offered rate exposes it, which is what the p99 gate is for.
//!
//! Both are deterministic given the `SmallRng` seed, so bench artifacts
//! are reproducible.

use rand::rngs::SmallRng;
use rand::Rng;

/// A Zipf-like popularity distribution over `0..n` with exponent `s`:
/// `P(k) ∝ (k + 1)^-s`. `s = 0` is uniform; `s ≈ 1` is classic web-load
/// skew.
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Cumulative probabilities; `cdf[k]` = P(X ≤ k), last entry 1.0.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler for ranks `0..n`. Panics if `n == 0`, or if
    /// `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs a non-empty support");
        assert!(s >= 0.0 && s.is_finite(), "Zipf exponent must be finite and ≥ 0");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for k in 0..n {
            total += ((k + 1) as f64).powf(-s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draw one rank in `0..n` (0 is the most popular).
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen();
        // First index whose cumulative probability covers `u`.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Support size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false (construction rejects an empty support).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// One exponential inter-arrival gap, in seconds, for a Poisson process
/// of `rate` arrivals/second: `-ln(1 - u) / rate`. Panics unless `rate`
/// is positive and finite.
pub fn poisson_interarrival(rng: &mut SmallRng, rate: f64) -> f64 {
    assert!(rate > 0.0 && rate.is_finite(), "arrival rate must be positive and finite");
    let u: f64 = rng.gen();
    // `u` is in [0, 1); `1 - u` is in (0, 1], so ln is finite and the
    // gap is ≥ 0.
    -(1.0 - u).ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_deterministic_and_in_range() {
        let z = Zipf::new(100, 1.1);
        assert_eq!(z.len(), 100);
        assert!(!z.is_empty());
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = z.sample(&mut a);
            assert_eq!(x, z.sample(&mut b), "same seed, same stream");
            assert!(x < 100);
        }
    }

    #[test]
    fn zipf_skews_toward_the_head() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut head = 0usize;
        const DRAWS: usize = 20_000;
        for _ in 0..DRAWS {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // Under s=1 the top-10 of 1000 carries ~39% of the mass; under
        // uniform it would carry 1%. Loose bounds keep this robust.
        assert!(head > DRAWS / 5, "head too light: {head}/{DRAWS}");
        assert!(head < DRAWS * 3 / 5, "head too heavy: {head}/{DRAWS}");
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((1600..2400).contains(&c), "uniform draw skewed: {counts:?}");
        }
    }

    #[test]
    fn interarrival_mean_tracks_rate() {
        let mut rng = SmallRng::seed_from_u64(9);
        let rate = 50.0;
        let n = 20_000;
        let total: f64 = (0..n).map(|_| poisson_interarrival(&mut rng, rate)).sum();
        let mean = total / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.002, "mean gap {mean} should be near {}", 1.0 / rate);
        assert!((0..100).all(|_| poisson_interarrival(&mut rng, rate) >= 0.0));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zipf_rejects_empty_support() {
        let _ = Zipf::new(0, 1.0);
    }
}
