//! Batch recommendation serving on top of the private framework.
//!
//! [`ClusterFramework::recommend`] is built for evaluation sweeps: each
//! call re-releases the noisy averages and walks every user's full
//! similarity row. A server answering many requests against one fixed
//! release can do much better without touching the privacy analysis,
//! because everything after the release is post-processing:
//!
//! * [`ReleaseCache`] — the noisy release is stamped with a
//!   *generation* (a hash of partition / ε / noise model / seed) and
//!   rebuilt only when that generation changes;
//! * [`SimMassIndex`] — the per-user cluster similarity masses are
//!   precomputed once, in parallel, collapsing per-query work from
//!   `O(|sim(u)|)` to one sparse axpy per touched cluster;
//! * [`ServeMetrics`] — atomic counters and log-bucketed latency
//!   histograms, recorded lock-free from inside the parallel batch.
//!
//! On top of the single-server building blocks sits the concurrent
//! serving daemon, [`ShardedServer`]: user-partitioned shards (each
//! owning a rebased slice of the index), flat-combining admission that
//! coalesces concurrent single queries into kernel batches
//! ([`coalesce`]), and epoch-based hot-swap of rebuilt releases under
//! live traffic ([`hotswap`]). [`loadgen`] holds the Zipf/Poisson
//! samplers `serve-bench` drives it with.
//!
//! [`RecommendationServer::recommend_batch`] is **bit-identical** to
//! [`ClusterFramework::recommend`] for the same inputs: the index
//! replays the framework's exact floating-point accumulation order
//! (see [`SimMassIndex`]'s floating-point contract).

#![warn(missing_docs)]

mod cache;
pub mod coalesce;
pub mod hotswap;
mod index;
pub mod kernel;
pub mod loadgen;
mod shard;

pub use cache::{partition_fingerprint, release_generation, ReleaseCache};
pub use coalesce::AdmissionQueue;
pub use hotswap::{EpochCell, ReleaseExchange};
pub use index::{dirty_index_rows, SimMassIndex};
pub use shard::ShardedServer;
// The metrics types moved to `socialrec-obs` (the workspace-wide
// observability layer); re-exported here so the pre-obs public API
// keeps working.
pub use socialrec_obs::{LatencyHistogram, MetricsSnapshot, ServeMetrics};

use rayon::prelude::*;
use socialrec_community::Partition;
use socialrec_core::private::framework::{ClusterFramework, NoiseModel, NoisyClusterAverages};
use socialrec_core::{top_n_items, RecommenderInputs, TopN, TopNRecommender};
use socialrec_dp::Epsilon;
use socialrec_graph::UserId;
use socialrec_obs::span;
use socialrec_similarity::SimilarityMatrix;
use std::sync::Arc;
use std::time::Instant;

/// A serving front-end over one partition + similarity matrix + ε.
///
/// Construction precomputes the [`SimMassIndex`]; the noisy release is
/// built lazily on first use and cached per [`release_generation`].
pub struct RecommendationServer<'p> {
    framework: ClusterFramework<'p>,
    fingerprint: u64,
    index: SimMassIndex,
    cache: ReleaseCache,
    metrics: ServeMetrics,
}

impl<'p> RecommendationServer<'p> {
    /// Build a server for the given clustering, similarity matrix, and
    /// privacy level. `sim` must be the same matrix later passed inside
    /// [`RecommenderInputs`] to the query methods — the index is
    /// precomputed from it here.
    pub fn new(
        partition: &'p Partition,
        sim: &SimilarityMatrix,
        epsilon: Epsilon,
    ) -> RecommendationServer<'p> {
        Self::from_index(partition, SimMassIndex::build(sim, partition), epsilon)
    }

    /// Build a server around a prebuilt [`SimMassIndex`] — typically
    /// one opened zero-copy from an artifact file
    /// ([`SimMassIndex::open_artifact`]). The index must cover exactly
    /// `partition`'s users and have been built against that partition.
    pub fn from_index(
        partition: &'p Partition,
        index: SimMassIndex,
        epsilon: Epsilon,
    ) -> RecommendationServer<'p> {
        assert_eq!(index.num_users(), partition.num_users(), "index must cover the partition");
        assert_eq!(
            index.num_clusters(),
            partition.num_clusters(),
            "index was built against a different partition"
        );
        let framework = ClusterFramework::new(partition, epsilon);
        RecommendationServer {
            framework,
            fingerprint: partition_fingerprint(partition),
            index,
            cache: ReleaseCache::new(),
            metrics: ServeMetrics::new(),
        }
    }

    /// Select the noise distribution (default: Laplace). Changing it
    /// changes the release generation, so the next batch rebuilds.
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.framework = self.framework.with_noise(noise);
        self
    }

    /// The underlying framework (partition, ε, noise model).
    pub fn framework(&self) -> &ClusterFramework<'p> {
        &self.framework
    }

    /// The precomputed similarity-mass index.
    pub fn index(&self) -> &SimMassIndex {
        &self.index
    }

    /// The release cache (exposed for inspection/invalidation).
    pub fn cache(&self) -> &ReleaseCache {
        &self.cache
    }

    /// Serving metrics recorded so far.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The release generation queries with `seed` resolve to.
    pub fn generation_for(&self, seed: u64) -> u64 {
        release_generation(
            self.fingerprint,
            self.framework.epsilon(),
            self.framework.noise_model(),
            seed,
        )
    }

    /// The cached-or-rebuilt noisy release for `seed`, and whether the
    /// cache served it.
    fn release(
        &self,
        inputs: &RecommenderInputs<'_>,
        seed: u64,
    ) -> (Arc<NoisyClusterAverages>, bool) {
        let generation = self.generation_for(seed);
        let (averages, hit) = self.cache.get_or_build(generation, || {
            let _span = span!("serve.rebuild");
            self.framework.noisy_cluster_averages(inputs, seed)
        });
        if !hit && socialrec_obs::enabled() {
            // The rebuild just recorded a release in the privacy ledger
            // (via the core release kernel); stamp it with the cache
            // generation that consumed it.
            socialrec_obs::PrivacyLedger::global().stamp_generation(generation);
        }
        (averages, hit)
    }

    /// Top-N recommendations for a batch of users.
    ///
    /// Output is deterministic and bit-identical to
    /// `ClusterFramework::recommend(inputs, users, n, seed)` — same
    /// items, same order, same utility values — while amortizing the
    /// release across batches and the similarity walk across all
    /// queries. Utilities are computed with the item-tiled, user-blocked
    /// kernel ([`kernel::utilities_block_tiled`]); blocks of
    /// [`kernel::USER_BLOCK`] consecutive users are distributed across
    /// workers, each pooling one utility buffer.
    ///
    /// Per-query latency is recorded as each user's top-N selection
    /// time plus an equal share of its block's utility-kernel time (the
    /// kernel interleaves the block's users by design).
    pub fn recommend_batch(
        &self,
        inputs: &RecommenderInputs<'_>,
        users: &[UserId],
        n: usize,
        seed: u64,
    ) -> Vec<TopN> {
        let _span = span!("serve.batch", users = users.len());
        let batch_start = Instant::now();
        let (averages, cache_hit) = self.release(inputs, seed);
        let ni = averages.num_items();
        let num_blocks = users.len().div_ceil(kernel::USER_BLOCK);
        let blocks: Vec<Vec<TopN>> = (0..num_blocks)
            .into_par_iter()
            .map_init(Vec::new, |buf, b| {
                let lo = b * kernel::USER_BLOCK;
                let hi = ((b + 1) * kernel::USER_BLOCK).min(users.len());
                let block = &users[lo..hi];
                let t = Instant::now();
                kernel::utilities_block_tiled(
                    &averages,
                    &self.index,
                    block,
                    kernel::ITEM_TILE,
                    buf,
                );
                let util_share = t.elapsed() / block.len() as u32;
                block
                    .iter()
                    .enumerate()
                    .map(|(k, &u)| {
                        let t = Instant::now();
                        let items = top_n_items(&buf[k * ni..(k + 1) * ni], n);
                        self.metrics.record_query(util_share + t.elapsed());
                        TopN { user: u, items }
                    })
                    .collect()
            })
            .collect();
        self.metrics.record_batch(batch_start.elapsed(), cache_hit);
        blocks.into_iter().flatten().collect()
    }

    /// A single-user query with a direct path: same cached release and
    /// the same blocked kernel (a one-user block), but none of the
    /// batch fan-out machinery. Recorded under the `singles` metric, so
    /// batch counters and batch latency stay unpolluted by singleton
    /// queries. Bit-identical to the corresponding
    /// [`recommend_batch`](RecommendationServer::recommend_batch) row.
    pub fn recommend_one(
        &self,
        inputs: &RecommenderInputs<'_>,
        user: UserId,
        n: usize,
        seed: u64,
    ) -> TopN {
        let _span = span!("serve.one");
        let start = Instant::now();
        let (averages, cache_hit) = self.release(inputs, seed);
        let mut out = Vec::new();
        kernel::utilities_block_tiled(
            &averages,
            &self.index,
            std::slice::from_ref(&user),
            kernel::ITEM_TILE,
            &mut out,
        );
        let top = TopN { user, items: top_n_items(&out, n) };
        self.metrics.record_single(start.elapsed(), cache_hit);
        top
    }
}

impl TopNRecommender for RecommendationServer<'_> {
    fn name(&self) -> String {
        format!("serve({})", self.framework.name())
    }

    fn recommend(
        &self,
        inputs: &RecommenderInputs<'_>,
        users: &[UserId],
        n: usize,
        seed: u64,
    ) -> Vec<TopN> {
        self.recommend_batch(inputs, users, n, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialrec_graph::preference::preference_graph_from_edges;
    use socialrec_graph::social::social_graph_from_edges;
    use socialrec_similarity::Measure;

    fn fixture() -> (socialrec_graph::SocialGraph, socialrec_graph::PreferenceGraph) {
        let s =
            social_graph_from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
                .unwrap();
        let p = preference_graph_from_edges(
            6,
            4,
            &[(0, 0), (1, 0), (2, 0), (3, 1), (4, 1), (5, 1), (1, 2), (4, 3)],
        )
        .unwrap();
        (s, p)
    }

    #[test]
    fn batch_matches_framework_bitwise() {
        let (s, p) = fixture();
        let sim = SimilarityMatrix::build(&s, &Measure::CommonNeighbors);
        let inputs = RecommenderInputs { prefs: &p, sim: &sim };
        let partition = Partition::from_assignment(&[0, 0, 0, 1, 1, 1]);
        let users: Vec<UserId> = (0..6).map(UserId).collect();
        let server = RecommendationServer::new(&partition, &sim, Epsilon::Finite(0.5));
        let fw = ClusterFramework::new(&partition, Epsilon::Finite(0.5));
        let got = server.recommend_batch(&inputs, &users, 3, 42);
        let want = fw.recommend(&inputs, &users, 3, 42);
        assert_eq!(got, want);
        for (g, w) in got.iter().zip(&want) {
            for ((gi, gu), (wi, wu)) in g.items.iter().zip(&w.items) {
                assert_eq!(gi, wi);
                assert_eq!(gu.to_bits(), wu.to_bits());
            }
        }
    }

    #[test]
    fn cache_hits_across_batches_and_invalidates_on_seed_change() {
        let (s, p) = fixture();
        let sim = SimilarityMatrix::build(&s, &Measure::CommonNeighbors);
        let inputs = RecommenderInputs { prefs: &p, sim: &sim };
        let partition = Partition::from_assignment(&[0, 0, 0, 1, 1, 1]);
        let users: Vec<UserId> = (0..6).map(UserId).collect();
        let server = RecommendationServer::new(&partition, &sim, Epsilon::Finite(1.0));

        server.recommend_batch(&inputs, &users, 2, 1);
        server.recommend_batch(&inputs, &users, 2, 1);
        server.recommend_batch(&inputs, &users, 2, 2);
        let snap = server.metrics().snapshot();
        assert_eq!(snap.batches, 3);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_rebuilds, 2);
        assert_eq!(snap.queries, 18);
        assert_eq!(server.cache().generation(), Some(server.generation_for(2)));
    }

    #[test]
    fn recommend_one_equals_batch_row() {
        let (s, p) = fixture();
        let sim = SimilarityMatrix::build(&s, &Measure::AdamicAdar);
        let inputs = RecommenderInputs { prefs: &p, sim: &sim };
        let partition = Partition::one_cluster(6);
        let server = RecommendationServer::new(&partition, &sim, Epsilon::Infinite);
        let batch = server.recommend_batch(&inputs, &[UserId(2), UserId(4)], 2, 0);
        for &u in &[UserId(2), UserId(4)] {
            let single = server.recommend_one(&inputs, u, 2, 0);
            let row = batch.iter().find(|t| t.user == u).unwrap();
            assert_eq!(&single, row);
            for ((si, su), (bi, bu)) in single.items.iter().zip(&row.items) {
                assert_eq!(si, bi);
                assert_eq!(su.to_bits(), bu.to_bits(), "utility bits differ on single path");
            }
        }
        // The direct path records singles + queries, never batches.
        let snap = server.metrics().snapshot();
        assert_eq!(snap.batches, 1, "only the explicit recommend_batch call");
        assert_eq!(snap.singles, 2);
        assert_eq!(snap.queries, 2 + 2);
        assert_eq!(snap.cache_rebuilds, 1, "singles share the release cache");
        assert_eq!(snap.cache_hits, 2);
    }

    #[test]
    fn batch_with_ragged_and_oversized_blocks_matches_framework() {
        // 6 users with USER_BLOCK = 8: a single ragged block; also ask
        // for more items than exist (n > num_items) through the blocked
        // kernel path.
        let (s, p) = fixture();
        let sim = SimilarityMatrix::build(&s, &Measure::CommonNeighbors);
        let inputs = RecommenderInputs { prefs: &p, sim: &sim };
        let partition = Partition::from_assignment(&[0, 1, 0, 1, 0, 1]);
        let users: Vec<UserId> = (0..6).map(UserId).collect();
        let server = RecommendationServer::new(&partition, &sim, Epsilon::Finite(0.3));
        let fw = ClusterFramework::new(&partition, Epsilon::Finite(0.3));
        let got = server.recommend_batch(&inputs, &users, 100, 7);
        let want = fw.recommend(&inputs, &users, 100, 7);
        assert_eq!(got, want);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.items.len(), 4, "n > num_items clamps to the item count");
            for ((gi, gu), (wi, wu)) in g.items.iter().zip(&w.items) {
                assert_eq!(gi, wi);
                assert_eq!(gu.to_bits(), wu.to_bits());
            }
        }
    }
}
