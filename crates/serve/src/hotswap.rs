//! Epoch-based hot-swap of the noisy release under live traffic.
//!
//! A generation change (seed / ε / partition bump) must not stop the
//! world: queries for the old generation keep being answered from the
//! release they were admitted under while exactly **one** thread builds
//! the new release, and each response is computed wholly from a single
//! generation's release. Two pieces implement that:
//!
//! * [`ReleaseExchange`] — the daemon-wide source of truth. A
//!   generation-keyed map with **per-generation once-build** semantics:
//!   the first thread to miss a generation builds it (outside any lock
//!   other threads need), racing threads for the same generation park
//!   on a condvar, and every other generation stays readable
//!   throughout. The newest [`RETAIN_GENERATIONS`] generations are
//!   retained so in-flight traffic admitted just before a swap never
//!   forces a *re*-release of its predecessor (a rebuild with the same
//!   seed is bit-identical, but it would double-count in the privacy
//!   ledger). A panicking builder unparks the waiters and leaves the
//!   exchange clean — the next query retries the build.
//! * [`EpochCell`] — a shard-local `(generation, release)` pointer.
//!   Shards serve hits from their own cell (no cross-shard contention)
//!   and refresh it from the exchange on a generation change; the store
//!   is a pointer swap under a lock held for nanoseconds, which is the
//!   epoch flip.
//!
//! Ledger discipline: [`ReleaseExchange::get_or_build`] reports whether
//! *this call* built, so the caller can stamp the privacy ledger
//! exactly once per new generation no matter how many shards or threads
//! raced for it.

use socialrec_core::private::framework::NoisyClusterAverages;
use socialrec_obs::journal::{self, EventKind};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Generations the exchange keeps alive: the current one plus its
/// predecessor, so a hot swap under live traffic never rebuilds the
/// release that in-flight queries were admitted under.
pub const RETAIN_GENERATIONS: usize = 2;

/// Lock a mutex, recovering from poisoning (the protected state is only
/// written in consistent steps, so a panicking peer leaves it usable).
fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

enum Entry {
    /// A build is in flight; waiters park on the exchange condvar.
    Building,
    /// The release is available.
    Ready(Arc<NoisyClusterAverages>),
}

#[derive(Default)]
struct ExchangeState {
    /// `(generation, entry)` in build order, newest last.
    entries: Vec<(u64, Entry)>,
    /// Monotone swap counter: bumped once per completed build.
    epoch: u64,
}

/// The daemon-wide, generation-keyed release source. See the module
/// docs for the full contract.
#[derive(Default)]
pub struct ReleaseExchange {
    state: Mutex<ExchangeState>,
    ready: Condvar,
}

impl ReleaseExchange {
    /// An empty exchange.
    pub fn new() -> ReleaseExchange {
        ReleaseExchange::default()
    }

    /// The release for `generation`, building it with `build` on a
    /// miss. Returns the release and whether **this call** ran the
    /// build — `true` exactly once per generation (while retained), so
    /// the caller can stamp the privacy ledger without double counting.
    ///
    /// Hits and builds of *other* generations never block on an
    /// in-flight build; racing calls for the *same* generation park
    /// until the builder finishes (or panics, in which case one of them
    /// retries the build and the panic propagates to the original
    /// caller only).
    pub fn get_or_build(
        &self,
        generation: u64,
        build: impl FnOnce() -> NoisyClusterAverages,
    ) -> (Arc<NoisyClusterAverages>, bool) {
        {
            let mut state = lock_recovering(&self.state);
            loop {
                match state.entries.iter().find(|(g, _)| *g == generation).map(|(_, e)| e) {
                    Some(Entry::Ready(a)) => return (Arc::clone(a), false),
                    Some(Entry::Building) => {
                        state = self.ready.wait(state).unwrap_or_else(PoisonError::into_inner);
                    }
                    None => {
                        state.entries.push((generation, Entry::Building));
                        break;
                    }
                }
            }
        }
        // Build outside the lock: every other generation stays
        // servable. The guard withdraws the claim and unparks waiters
        // if `build` panics, so they retry instead of hanging.
        struct Claim<'a> {
            exchange: &'a ReleaseExchange,
            generation: u64,
            done: bool,
        }
        impl Drop for Claim<'_> {
            fn drop(&mut self) {
                if !self.done {
                    let mut state = lock_recovering(&self.exchange.state);
                    state.entries.retain(|(g, _)| *g != self.generation);
                    self.exchange.ready.notify_all();
                    journal::emit(EventKind::BuilderPanicRecovered, self.generation, 0);
                }
            }
        }
        let mut claim = Claim { exchange: self, generation, done: false };
        let averages = Arc::new(build());
        claim.done = true;
        let mut state = lock_recovering(&self.state);
        for (g, e) in state.entries.iter_mut() {
            if *g == generation {
                *e = Entry::Ready(Arc::clone(&averages));
            }
        }
        state.epoch += 1;
        // Evict the oldest Ready generations beyond the retention
        // window; never evict an in-flight build.
        let mut ready_count =
            state.entries.iter().filter(|(_, e)| matches!(e, Entry::Ready(_))).count();
        state.entries.retain(|(_, e)| {
            if ready_count > RETAIN_GENERATIONS && matches!(e, Entry::Ready(_)) {
                ready_count -= 1;
                false
            } else {
                true
            }
        });
        drop(state);
        self.ready.notify_all();
        journal::emit(EventKind::ReleasePublished, generation, 0);
        (averages, true)
    }

    /// Insert an externally built release for `generation` — the
    /// streaming-refresh path, where a `DynamicRecommender` produced
    /// (and its accountant already debited) the release, and the daemon
    /// must serve it *without* an on-miss rebuild that would spend the
    /// privacy budget a second time.
    ///
    /// A successful publish counts as an epoch flip and participates in
    /// the normal [`RETAIN_GENERATIONS`] retention window. Returns
    /// whether this call installed the release: `false` when the
    /// generation is already ready (publish is idempotent) or a build
    /// for it is in flight (the publisher defers; the builder's result
    /// is bit-identical by the generation contract).
    pub fn publish(&self, generation: u64, averages: Arc<NoisyClusterAverages>) -> bool {
        let mut state = lock_recovering(&self.state);
        if state.entries.iter().any(|(g, _)| *g == generation) {
            return false;
        }
        state.entries.push((generation, Entry::Ready(averages)));
        state.epoch += 1;
        let mut ready_count =
            state.entries.iter().filter(|(_, e)| matches!(e, Entry::Ready(_))).count();
        state.entries.retain(|(_, e)| {
            if ready_count > RETAIN_GENERATIONS && matches!(e, Entry::Ready(_)) {
                ready_count -= 1;
                false
            } else {
                true
            }
        });
        drop(state);
        self.ready.notify_all();
        journal::emit(EventKind::ReleasePublished, generation, 0);
        true
    }

    /// The release for `generation` if already built and retained.
    pub fn get(&self, generation: u64) -> Option<Arc<NoisyClusterAverages>> {
        let state = lock_recovering(&self.state);
        state.entries.iter().find_map(|(g, e)| match e {
            Entry::Ready(a) if *g == generation => Some(Arc::clone(a)),
            _ => None,
        })
    }

    /// Number of completed builds (epoch flips) so far.
    pub fn epoch(&self) -> u64 {
        lock_recovering(&self.state).epoch
    }

    /// Generations currently retained (ready entries, oldest first).
    pub fn retained(&self) -> Vec<u64> {
        lock_recovering(&self.state)
            .entries
            .iter()
            .filter_map(|(g, e)| matches!(e, Entry::Ready(_)).then_some(*g))
            .collect()
    }
}

/// A shard-local `(generation, release)` pointer — the epoch a shard is
/// currently serving. Loads and stores hold the lock for a pointer copy
/// only, so the flip is invisible to latency.
#[derive(Default)]
pub struct EpochCell {
    slot: Mutex<Option<(u64, Arc<NoisyClusterAverages>)>>,
}

impl EpochCell {
    /// An empty cell.
    pub fn new() -> EpochCell {
        EpochCell::default()
    }

    /// The release if the cell currently holds `generation`.
    pub fn load(&self, generation: u64) -> Option<Arc<NoisyClusterAverages>> {
        match lock_recovering(&self.slot).as_ref() {
            Some((g, a)) if *g == generation => Some(Arc::clone(a)),
            _ => None,
        }
    }

    /// Flip the cell to `generation`.
    pub fn store(&self, generation: u64, averages: Arc<NoisyClusterAverages>) {
        *lock_recovering(&self.slot) = Some((generation, averages));
    }

    /// The generation the cell last served, if any.
    pub fn generation(&self) -> Option<u64> {
        lock_recovering(&self.slot).as_ref().map(|(g, _)| *g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialrec_community::Partition;
    use socialrec_core::private::framework::release_noisy_cluster_averages;
    use socialrec_dp::Epsilon;
    use socialrec_graph::preference::preference_graph_from_edges;

    fn tiny_release(seed: u64) -> NoisyClusterAverages {
        let partition = Partition::from_assignment(&[0, 0, 1]);
        let prefs = preference_graph_from_edges(3, 2, &[(0, 0), (1, 1), (2, 0)]).unwrap();
        release_noisy_cluster_averages(&partition, &prefs, Epsilon::Finite(1.0), seed)
    }

    #[test]
    fn racing_threads_build_each_generation_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let ex = ReleaseExchange::new();
        let builds = AtomicUsize::new(0);
        let built_flags = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let (ex, builds, built_flags) = (&ex, &builds, &built_flags);
                s.spawn(move || {
                    let gen = t % 2; // two generations, four racers each
                    let (_, built) = ex.get_or_build(gen, || {
                        builds.fetch_add(1, Ordering::SeqCst);
                        tiny_release(gen)
                    });
                    lock_recovering(built_flags).push(built);
                });
            }
        });
        assert_eq!(builds.load(Ordering::SeqCst), 2, "one build per generation");
        let flags = lock_recovering(&built_flags);
        assert_eq!(flags.iter().filter(|&&b| b).count(), 2, "exactly one builder per generation");
        assert_eq!(ex.epoch(), 2);
    }

    #[test]
    fn predecessor_generation_survives_one_swap() {
        let ex = ReleaseExchange::new();
        let (g1, built) = ex.get_or_build(1, || tiny_release(1));
        assert!(built);
        ex.get_or_build(2, || tiny_release(2));
        // Straggler traffic admitted under generation 1 still hits.
        let (again, built) = ex.get_or_build(1, || panic!("predecessor must be retained"));
        assert!(!built);
        assert!(Arc::ptr_eq(&g1, &again));
        assert_eq!(ex.retained(), vec![1, 2]);
        // A third generation evicts the oldest.
        ex.get_or_build(3, || tiny_release(3));
        assert_eq!(ex.retained(), vec![2, 3]);
        assert!(ex.get(1).is_none());
        assert_eq!(ex.epoch(), 3);
    }

    #[test]
    fn panicking_build_unparks_waiters_and_leaves_exchange_clean() {
        let ex = ReleaseExchange::new();
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ex.get_or_build(5, || panic!("release builder exploded"));
        }));
        assert!(boom.is_err());
        assert!(ex.get(5).is_none(), "failed build leaves no entry");
        assert_eq!(ex.epoch(), 0);
        // The same generation rebuilds cleanly afterwards.
        let (_, built) = ex.get_or_build(5, || tiny_release(5));
        assert!(built);
        assert_eq!(ex.retained(), vec![5]);
    }

    #[test]
    fn other_generations_stay_readable_during_a_build() {
        use std::sync::mpsc;
        let ex = ReleaseExchange::new();
        ex.get_or_build(1, || tiny_release(1));
        let (entered_tx, entered_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let ex = &ex;
        std::thread::scope(|s| {
            s.spawn(move || {
                ex.get_or_build(2, || {
                    entered_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                    tiny_release(2)
                });
            });
            entered_rx.recv().unwrap();
            // Generation 1 is served while generation 2 is mid-build.
            let (_, built) = ex.get_or_build(1, || panic!("hit must not rebuild"));
            assert!(!built);
            release_tx.send(()).unwrap();
        });
        assert_eq!(ex.retained(), vec![1, 2]);
    }

    #[test]
    fn publish_installs_once_and_respects_retention() {
        let ex = ReleaseExchange::new();
        let a = Arc::new(tiny_release(1));
        assert!(ex.publish(1, Arc::clone(&a)));
        assert_eq!(ex.epoch(), 1);
        assert!(Arc::ptr_eq(&ex.get(1).unwrap(), &a));
        // Idempotent: a second publish of the same generation is a no-op
        // and the originally published release keeps serving.
        assert!(!ex.publish(1, Arc::new(tiny_release(1))));
        assert_eq!(ex.epoch(), 1);
        assert!(Arc::ptr_eq(&ex.get(1).unwrap(), &a));
        // A query for a published generation never rebuilds.
        let (got, built) = ex.get_or_build(1, || panic!("published generation must hit"));
        assert!(!built);
        assert!(Arc::ptr_eq(&got, &a));
        // Publishes ride the same retention window as builds.
        assert!(ex.publish(2, Arc::new(tiny_release(2))));
        assert!(ex.publish(3, Arc::new(tiny_release(3))));
        assert_eq!(ex.retained(), vec![2, 3]);
        assert_eq!(ex.epoch(), 3);
    }

    #[test]
    fn publish_defers_to_in_flight_build() {
        use std::sync::mpsc;
        let ex = ReleaseExchange::new();
        let (entered_tx, entered_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let exr = &ex;
        std::thread::scope(|s| {
            s.spawn(move || {
                exr.get_or_build(7, || {
                    entered_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                    tiny_release(7)
                });
            });
            entered_rx.recv().unwrap();
            assert!(!exr.publish(7, Arc::new(tiny_release(7))), "publisher defers to the builder");
            release_tx.send(()).unwrap();
        });
        assert_eq!(ex.epoch(), 1, "only the build flipped the epoch");
        assert_eq!(ex.retained(), vec![7]);
    }

    #[test]
    fn epoch_cell_flips_generations() {
        let cell = EpochCell::new();
        assert_eq!(cell.generation(), None);
        assert!(cell.load(1).is_none());
        let a = Arc::new(tiny_release(1));
        cell.store(1, Arc::clone(&a));
        assert!(Arc::ptr_eq(&cell.load(1).unwrap(), &a));
        assert!(cell.load(2).is_none(), "wrong generation must miss");
        let b = Arc::new(tiny_release(2));
        cell.store(2, b);
        assert_eq!(cell.generation(), Some(2));
        assert!(cell.load(1).is_none(), "cell holds exactly one epoch");
    }
}
