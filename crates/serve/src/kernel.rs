//! The blocked batch utility kernel.
//!
//! Per query, Algorithm 1's `A_R` module is the sparse×dense product
//! `μ̂_u = Σ_c mass_{u,c} · ŵ_c` — a handful of [`SimMassIndex`] row
//! entries against full-width release rows. The first-generation
//! serving path ran it one user at a time at full item width: every
//! touched cluster streamed the whole `num_items`-sized accumulator
//! (tens of kilobytes) through the cache once per cluster, and release
//! rows were re-fetched per user.
//!
//! [`utilities_block_tiled`] restructures the loop nest: items are cut
//! into tiles sized to stay resident in L1 while clusters stream over
//! them, and users are processed in small blocks so each release-row
//! tile fetched into cache is reused by every user in the block that
//! touches its cluster.
//!
//! # Floating-point contract (why tiling is exact, not approximate)
//!
//! For a fixed `(user, item)` pair, the value accumulated is
//! `Σ_c mass_{u,c} · ŵ_c[i]` over the user's touched clusters in
//! **ascending cluster order** — the order [`SimMassIndex`] stores rows
//! in, which is itself the order the reference path's dense scratch
//! iterates. Tiling splits the *items*, never the cluster sum: each
//! `(user, item)` accumulator still receives exactly the same additions
//! in exactly the same order, whatever the tile size, tile alignment,
//! or user block. The kernel is therefore **bit-identical** to
//! [`utilities_into_reference`] — proven across tile sizes, ragged
//! final tiles, empty sim rows, and thread counts by the tests in this
//! module and `tests/thread_matrix.rs`.

use crate::SimMassIndex;
use socialrec_core::private::framework::NoisyClusterAverages;
use socialrec_graph::UserId;
use socialrec_similarity::RowVals;

/// Items per tile: 512 f64 = 4 KiB, so the destination tile plus one
/// streaming release-row tile sit comfortably in a 32 KiB L1d.
pub const ITEM_TILE: usize = 512;

/// Users per block: release-row tiles pulled into cache are reused by
/// up to this many queries before eviction.
pub const USER_BLOCK: usize = 8;

/// Utility estimates for one user: the per-user full-width sparse axpy
/// the serving layer shipped first. Retained, fully scalar, as the
/// equivalence reference for the blocked SIMD kernel (and still
/// bit-identical to `ClusterFramework::utility_estimates_into`).
pub fn utilities_into_reference(
    averages: &NoisyClusterAverages,
    index: &SimMassIndex,
    u: UserId,
    out: &mut Vec<f64>,
) {
    let ni = averages.num_items();
    out.clear();
    out.resize(ni, 0.0);
    let (clusters, masses) = index.row_vals(u);
    match masses {
        RowVals::F64(ms) => {
            for (&cl, &mass) in clusters.iter().zip(ms) {
                for (x, &w) in out.iter_mut().zip(averages.cluster_row(cl)) {
                    *x += mass * w;
                }
            }
        }
        RowVals::F32(ms) => {
            for (&cl, &m) in clusters.iter().zip(ms) {
                let mass = f64::from(m);
                for (x, &w) in out.iter_mut().zip(averages.cluster_row(cl)) {
                    *x += mass * w;
                }
            }
        }
    }
}

/// One user's index row with the width dispatch already resolved: the
/// clusters slice plus f64 masses, either borrowed straight from the
/// index or widened once from an f32 row into the shared scratch (the
/// widening is exact, so a compact index accumulates the same bits the
/// pre-quantized f64 index would — see [`SimMassIndex::quantized`]).
enum ResolvedMasses<'a> {
    Borrowed(&'a [f64]),
    /// Range into the caller's widening scratch.
    Widened(usize, usize),
}

/// The shared inner loop: accumulate one user's cluster masses against
/// the release-row slice `[t0, t1)` into `dst`, one SIMD axpy per
/// touched cluster. Elementwise, so bit-identical to the scalar
/// reference on every ISA tier (DESIGN.md §6d).
#[inline]
fn axpy_tile(
    averages: &NoisyClusterAverages,
    clusters: &[u32],
    masses: &[f64],
    t0: usize,
    t1: usize,
    dst: &mut [f64],
) {
    for (&cl, &mass) in clusters.iter().zip(masses) {
        socialrec_simd::axpy(dst, mass, &averages.cluster_row(cl)[t0..t1]);
    }
}

/// Utility estimates for a block of users, item-tiled: `out` is resized
/// to `users.len() * num_items` and row `k` (user `users[k]`) occupies
/// `out[k * num_items..(k + 1) * num_items]`.
///
/// `tile` is the item-tile width (clamped to at least 1; callers use
/// [`ITEM_TILE`], tests sweep it). See the module docs for why every
/// row is bit-identical to [`utilities_into_reference`].
///
/// Each user's `RowVals` width dispatch is resolved **once per row**
/// before the tile loop (f32 rows widen into a scratch buffer exactly
/// once), so the per-tile work is always the dense-f64 [`axpy_tile`].
pub fn utilities_block_tiled(
    averages: &NoisyClusterAverages,
    index: &SimMassIndex,
    users: &[UserId],
    tile: usize,
    out: &mut Vec<f64>,
) {
    let ni = averages.num_items();
    out.clear();
    out.resize(users.len() * ni, 0.0);
    let tile = tile.max(1);
    // Hoisted per-row dispatch: resolve every user's row before the
    // tile loop instead of re-matching per (tile × user). `widened` may
    // reallocate while filling, so rows store ranges, not slices.
    let mut widened: Vec<f64> = Vec::new();
    let rows: Vec<(&[u32], ResolvedMasses<'_>)> = users
        .iter()
        .map(|&u| {
            let (clusters, masses) = index.row_vals(u);
            let resolved = match masses {
                RowVals::F64(ms) => ResolvedMasses::Borrowed(ms),
                RowVals::F32(ms) => {
                    let start = widened.len();
                    widened.extend(ms.iter().map(|&m| f64::from(m)));
                    ResolvedMasses::Widened(start, widened.len())
                }
            };
            (clusters, resolved)
        })
        .collect();
    let mut t0 = 0;
    while t0 < ni {
        let t1 = (t0 + tile).min(ni);
        for (k, (clusters, resolved)) in rows.iter().enumerate() {
            let base = k * ni;
            let dst = &mut out[base + t0..base + t1];
            let masses: &[f64] = match *resolved {
                ResolvedMasses::Borrowed(ms) => ms,
                ResolvedMasses::Widened(s, e) => &widened[s..e],
            };
            axpy_tile(averages, clusters, masses, t0, t1, dst);
        }
        t0 = t1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialrec_community::Partition;
    use socialrec_core::private::framework::{
        release_noisy_cluster_averages, NoisyClusterAverages,
    };
    use socialrec_dp::Epsilon;
    use socialrec_graph::preference::preference_graph_from_edges;
    use socialrec_graph::social::social_graph_from_edges;
    use socialrec_similarity::{Measure, SimilarityMatrix};

    /// A fixture whose item count (37) is prime — no tile divides it —
    /// and whose user 12 is isolated, giving an empty sim row.
    fn fixture() -> (SimilarityMatrix, Partition, NoisyClusterAverages) {
        let n = 13u32;
        let mut edges: Vec<(u32, u32)> = (0..12u32).map(|u| (u, (u + 1) % 12)).collect();
        edges.extend([(0, 6), (2, 8), (4, 10)]);
        let s = social_graph_from_edges(n as usize, &edges).unwrap();
        let sim = SimilarityMatrix::build_sequential(&s, &Measure::CommonNeighbors);
        let prefs_edges: Vec<(u32, u32)> =
            (0..n).flat_map(|u| (0..5u32).map(move |k| (u, (u * 7 + k * 11) % 37))).collect();
        let prefs = preference_graph_from_edges(n as usize, 37, &prefs_edges).unwrap();
        let assignment: Vec<u32> = (0..n).map(|u| u % 4).collect();
        let partition = Partition::from_assignment(&assignment);
        let averages = release_noisy_cluster_averages(&partition, &prefs, Epsilon::Finite(0.5), 99);
        (sim, partition, averages)
    }

    #[test]
    fn blocked_kernel_matches_reference_across_tiles_and_blocks() {
        let (sim, partition, averages) = fixture();
        let index = SimMassIndex::build_reference(&sim, &partition);
        let users: Vec<UserId> = (0..13u32).map(UserId).collect();
        let mut want = Vec::new();
        let mut refs: Vec<Vec<f64>> = Vec::new();
        for &u in &users {
            utilities_into_reference(&averages, &index, u, &mut want);
            refs.push(want.clone());
        }
        let ni = averages.num_items();
        let mut out = Vec::new();
        // Tile sweep includes 1 (degenerate), sizes that do not divide
        // 37, the exact width, and far beyond it; block sweep includes
        // singleton blocks, ragged final blocks, and one giant block.
        for tile in [1, 2, 5, 16, 37, 64, 10_000] {
            for block in [1, 3, 8, 13] {
                for chunk in users.chunks(block) {
                    utilities_block_tiled(&averages, &index, chunk, tile, &mut out);
                    assert_eq!(out.len(), chunk.len() * ni);
                    for (k, &u) in chunk.iter().enumerate() {
                        let got = &out[k * ni..(k + 1) * ni];
                        let want = &refs[u.index()];
                        for (i, (a, b)) in got.iter().zip(want).enumerate() {
                            assert_eq!(
                                a.to_bits(),
                                b.to_bits(),
                                "tile={tile} block={block} user={u:?} item={i}: {a} vs {b}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn empty_sim_row_yields_all_zero_utilities() {
        let (sim, partition, averages) = fixture();
        let index = SimMassIndex::build(&sim, &partition);
        // User 12 is isolated: no similar users, empty index row.
        assert!(index.row(UserId(12)).0.is_empty());
        let mut out = Vec::new();
        utilities_block_tiled(&averages, &index, &[UserId(12)], 16, &mut out);
        assert_eq!(out.len(), averages.num_items());
        assert!(out.iter().all(|&x| x == 0.0));
    }

    /// Tentpole equivalence: serving from an mmap-backed index is
    /// bit-identical to serving from the heap index (f64 artifact), and
    /// serving from a compact f32 artifact is bit-identical to serving
    /// the pre-quantized heap index — the DESIGN.md §6e contract, with
    /// zero tolerance.
    #[test]
    fn mapped_and_compact_indexes_serve_identical_bits() {
        use socialrec_similarity::ValueKind;
        let (sim, partition, averages) = fixture();
        let heap = SimMassIndex::build(&sim, &partition);
        let dir = std::env::temp_dir().join("socialrec-kernel-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p64 = dir.join(format!("k64-{}.srart", std::process::id()));
        let p32 = dir.join(format!("k32-{}.srart", std::process::id()));
        heap.write_artifact(&p64, ValueKind::F64).unwrap();
        heap.write_artifact(&p32, ValueKind::F32).unwrap();
        let mapped = SimMassIndex::open_artifact(&p64).unwrap();
        let compact = SimMassIndex::open_artifact(&p32).unwrap();
        let quantized = heap.quantized();

        let users: Vec<UserId> = (0..13u32).map(UserId).collect();
        let ni = averages.num_items();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for tile in [1, 16, 37, 10_000] {
            for chunk in users.chunks(USER_BLOCK) {
                utilities_block_tiled(&averages, &heap, chunk, tile, &mut a);
                utilities_block_tiled(&averages, &mapped, chunk, tile, &mut b);
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "mapped f64 diverged at tile={tile}");
                }
                utilities_block_tiled(&averages, &quantized, chunk, tile, &mut a);
                utilities_block_tiled(&averages, &compact, chunk, tile, &mut b);
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "compact f32 diverged at tile={tile}");
                }
            }
        }
        // Reference path too, through row_vals.
        for &u in &users {
            utilities_into_reference(&averages, &quantized, u, &mut a);
            utilities_into_reference(&averages, &compact, u, &mut b);
            assert_eq!(a.len(), ni);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "reference path diverged for {u:?}");
            }
        }
        std::fs::remove_file(&p64).ok();
        std::fs::remove_file(&p32).ok();
    }

    #[test]
    fn empty_user_block_is_fine() {
        let (sim, partition, averages) = fixture();
        let index = SimMassIndex::build(&sim, &partition);
        let mut out = vec![1.0; 5];
        utilities_block_tiled(&averages, &index, &[], ITEM_TILE, &mut out);
        assert!(out.is_empty());
    }
}
