//! Generation-stamped caching of the noisy DP release.
//!
//! The release `A_w` (the `num_clusters × num_items` noisy-average
//! matrix) is the expensive, privacy-spending half of Algorithm 1.
//! Everything downstream is post-processing, so a server may reuse one
//! release across arbitrarily many queries *as long as the release
//! inputs are unchanged*. The cache key — the **release generation** —
//! is a hash of everything the release depends on: the partition
//! assignment, ε, the noise model, and the RNG seed. Any change to any
//! of them changes the generation and forces a rebuild; identical
//! inputs always hit.

use rustc_hash::FxHasher;
use socialrec_community::Partition;
use socialrec_core::private::framework::{NoiseModel, NoisyClusterAverages};
use socialrec_dp::Epsilon;
use std::hash::Hasher;
use std::sync::{Arc, Mutex};

/// Fingerprint of a partition: hash of its full cluster assignment.
pub fn partition_fingerprint(partition: &Partition) -> u64 {
    let mut h = FxHasher::default();
    h.write_usize(partition.num_users());
    for &c in partition.assignment() {
        h.write_u32(c);
    }
    h.finish()
}

/// The release generation: a single `u64` identifying one exact noisy
/// release. Two calls see the same generation iff they agree on the
/// partition, ε, noise model, and seed.
pub fn release_generation(
    partition_fingerprint: u64,
    epsilon: Epsilon,
    noise: NoiseModel,
    seed: u64,
) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(partition_fingerprint);
    match epsilon {
        Epsilon::Finite(e) => {
            h.write_u8(0);
            h.write_u64(e.to_bits());
        }
        Epsilon::Infinite => h.write_u8(1),
    }
    h.write_u8(match noise {
        NoiseModel::Laplace => 0,
        NoiseModel::Geometric => 1,
    });
    h.write_u64(seed);
    h.finish()
}

/// Lock a mutex, recovering from poisoning.
///
/// A panic inside a release builder must not brick the server: the
/// protected state is only ever written *after* a successful build, so
/// a poisoned guard still holds consistent data and can be adopted
/// as-is. (Pre-fix, every later query died on
/// `.expect("release cache poisoned")` — a permanently disabled
/// server.)
fn lock_recovering<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A one-slot, generation-stamped cache of the noisy release.
///
/// Holding a single slot is deliberate: a serving deployment pins one
/// release per (partition, ε, seed) configuration, and a seed change
/// means a *new* DP release whose predecessor must not be served again.
///
/// # Concurrency
///
/// The slot lock is only ever held for a pointer copy, never across a
/// build: generation **hits complete while a miss is mid-build**. A
/// separate build lock serializes builders (double-checked on entry, so
/// two racing misses for the same generation produce one build), and a
/// panicking builder poisons nothing observable — the panic propagates
/// to the query that triggered the build, and the next query simply
/// rebuilds.
#[derive(Debug, Default)]
pub struct ReleaseCache {
    slot: Mutex<Option<(u64, Arc<NoisyClusterAverages>)>>,
    /// Serializes builds only; the slot stays lockable (and servable)
    /// for the whole duration of a rebuild.
    build: Mutex<()>,
}

impl ReleaseCache {
    /// An empty cache.
    pub fn new() -> ReleaseCache {
        ReleaseCache::default()
    }

    fn lookup(&self, generation: u64) -> Option<Arc<NoisyClusterAverages>> {
        let slot = lock_recovering(&self.slot);
        match slot.as_ref() {
            Some((gen, averages)) if *gen == generation => Some(Arc::clone(averages)),
            _ => None,
        }
    }

    /// The noisy release for `generation`, building it with `build` on
    /// a miss. Returns the release and whether it was served from
    /// cache.
    pub fn get_or_build(
        &self,
        generation: u64,
        build: impl FnOnce() -> NoisyClusterAverages,
    ) -> (Arc<NoisyClusterAverages>, bool) {
        if let Some(averages) = self.lookup(generation) {
            return (averages, true);
        }
        // Miss: serialize builders, then re-check — a racing miss for
        // the same generation may have built while we waited, and its
        // result must be reused (single-build semantics).
        let _builder = lock_recovering(&self.build);
        if let Some(averages) = self.lookup(generation) {
            return (averages, true);
        }
        let averages = Arc::new(build());
        *lock_recovering(&self.slot) = Some((generation, Arc::clone(&averages)));
        (averages, false)
    }

    /// The generation currently cached, if any.
    pub fn generation(&self) -> Option<u64> {
        lock_recovering(&self.slot).as_ref().map(|(g, _)| *g)
    }

    /// Drop the cached release.
    pub fn invalidate(&self) {
        *lock_recovering(&self.slot) = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_separates_every_input() {
        let p1 = partition_fingerprint(&Partition::singletons(4));
        let p2 = partition_fingerprint(&Partition::one_cluster(4));
        assert_ne!(p1, p2);
        let base = release_generation(p1, Epsilon::Finite(0.5), NoiseModel::Laplace, 7);
        assert_eq!(base, release_generation(p1, Epsilon::Finite(0.5), NoiseModel::Laplace, 7));
        for other in [
            release_generation(p2, Epsilon::Finite(0.5), NoiseModel::Laplace, 7),
            release_generation(p1, Epsilon::Finite(0.6), NoiseModel::Laplace, 7),
            release_generation(p1, Epsilon::Infinite, NoiseModel::Laplace, 7),
            release_generation(p1, Epsilon::Finite(0.5), NoiseModel::Geometric, 7),
            release_generation(p1, Epsilon::Finite(0.5), NoiseModel::Laplace, 8),
        ] {
            assert_ne!(base, other);
        }
    }

    #[test]
    fn cache_hits_same_generation_and_rebuilds_on_change() {
        use socialrec_core::private::framework::release_noisy_cluster_averages;
        use socialrec_graph::preference::preference_graph_from_edges;

        let partition = Partition::from_assignment(&[0, 0, 1]);
        let prefs = preference_graph_from_edges(3, 2, &[(0, 0), (1, 1), (2, 0)]).unwrap();
        let build = |seed: u64| {
            release_noisy_cluster_averages(&partition, &prefs, Epsilon::Finite(1.0), seed)
        };
        let cache = ReleaseCache::new();
        assert_eq!(cache.generation(), None);

        let (a, hit) = cache.get_or_build(10, || build(10));
        assert!(!hit);
        let (b, hit) = cache.get_or_build(10, || panic!("must not rebuild on hit"));
        assert!(hit);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.generation(), Some(10));

        let (c, hit) = cache.get_or_build(11, || build(11));
        assert!(!hit);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.generation(), Some(11));

        cache.invalidate();
        assert_eq!(cache.generation(), None);
    }

    fn tiny_release() -> NoisyClusterAverages {
        use socialrec_core::private::framework::release_noisy_cluster_averages;
        use socialrec_graph::preference::preference_graph_from_edges;
        let partition = Partition::from_assignment(&[0, 0, 1]);
        let prefs = preference_graph_from_edges(3, 2, &[(0, 0), (1, 1), (2, 0)]).unwrap();
        release_noisy_cluster_averages(&partition, &prefs, Epsilon::Finite(1.0), 3)
    }

    /// Satellite regression: a generation hit must complete while a
    /// miss for another generation is mid-build — the pre-fix cache
    /// held the slot mutex across the whole build, stalling every
    /// concurrent query for the full rebuild duration.
    #[test]
    fn hits_complete_while_a_miss_is_mid_build() {
        use std::sync::mpsc;
        use std::time::Duration;

        let cache = ReleaseCache::new();
        cache.get_or_build(1, tiny_release);

        let (entered_tx, entered_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let cache = &cache;
        std::thread::scope(|s| {
            // A miss for generation 2 that blocks inside build() until
            // told to finish.
            s.spawn(move || {
                cache.get_or_build(2, || {
                    entered_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                    tiny_release()
                });
            });
            entered_rx.recv().unwrap();
            // The build is now in progress; generation-1 hits must be
            // served immediately. (A regression re-blocks this thread
            // forever; the send below would never run and the builder
            // would deadlock the test, not just fail it slowly.)
            let (hit, was_hit) = cache.get_or_build(1, || panic!("hit path must not rebuild"));
            assert!(was_hit);
            assert!(hit.num_items() > 0);
            assert_eq!(cache.generation(), Some(1), "swap happens only after the build");
            std::thread::sleep(Duration::from_millis(10));
            assert_eq!(cache.generation(), Some(1), "builder still running, slot untouched");
            release_tx.send(()).unwrap();
        });
        assert_eq!(cache.generation(), Some(2), "finished build swaps the slot");
    }

    /// Satellite regression: a panic inside the release builder used to
    /// poison the slot mutex, after which every later query died on
    /// `.expect("release cache poisoned")`. The panic must propagate to
    /// the triggering query only; the next query rebuilds.
    #[test]
    fn panicking_builder_does_not_brick_the_cache() {
        let cache = ReleaseCache::new();
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_build(7, || panic!("builder exploded"));
        }));
        assert!(boom.is_err(), "builder panic propagates to the triggering query");
        assert_eq!(cache.generation(), None, "failed build must not populate the slot");

        // The server is not bricked: the same generation rebuilds fine,
        // hits keep working, and invalidate still functions.
        let (a, hit) = cache.get_or_build(7, tiny_release);
        assert!(!hit);
        let (b, hit) = cache.get_or_build(7, || panic!("must hit now"));
        assert!(hit);
        assert!(Arc::ptr_eq(&a, &b));
        cache.invalidate();
        assert_eq!(cache.generation(), None);
    }

    /// Two racing misses for the same generation must produce exactly
    /// one build (double-checked build lock).
    #[test]
    fn racing_misses_build_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = ReleaseCache::new();
        let builds = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    cache.get_or_build(9, || {
                        builds.fetch_add(1, Ordering::SeqCst);
                        tiny_release()
                    })
                });
            }
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1, "one build per generation");
        assert_eq!(cache.generation(), Some(9));
    }
}
