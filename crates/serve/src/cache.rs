//! Generation-stamped caching of the noisy DP release.
//!
//! The release `A_w` (the `num_clusters × num_items` noisy-average
//! matrix) is the expensive, privacy-spending half of Algorithm 1.
//! Everything downstream is post-processing, so a server may reuse one
//! release across arbitrarily many queries *as long as the release
//! inputs are unchanged*. The cache key — the **release generation** —
//! is a hash of everything the release depends on: the partition
//! assignment, ε, the noise model, and the RNG seed. Any change to any
//! of them changes the generation and forces a rebuild; identical
//! inputs always hit.

use rustc_hash::FxHasher;
use socialrec_community::Partition;
use socialrec_core::private::framework::{NoiseModel, NoisyClusterAverages};
use socialrec_dp::Epsilon;
use std::hash::Hasher;
use std::sync::{Arc, Mutex};

/// Fingerprint of a partition: hash of its full cluster assignment.
pub fn partition_fingerprint(partition: &Partition) -> u64 {
    let mut h = FxHasher::default();
    h.write_usize(partition.num_users());
    for &c in partition.assignment() {
        h.write_u32(c);
    }
    h.finish()
}

/// The release generation: a single `u64` identifying one exact noisy
/// release. Two calls see the same generation iff they agree on the
/// partition, ε, noise model, and seed.
pub fn release_generation(
    partition_fingerprint: u64,
    epsilon: Epsilon,
    noise: NoiseModel,
    seed: u64,
) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(partition_fingerprint);
    match epsilon {
        Epsilon::Finite(e) => {
            h.write_u8(0);
            h.write_u64(e.to_bits());
        }
        Epsilon::Infinite => h.write_u8(1),
    }
    h.write_u8(match noise {
        NoiseModel::Laplace => 0,
        NoiseModel::Geometric => 1,
    });
    h.write_u64(seed);
    h.finish()
}

/// A one-slot, generation-stamped cache of the noisy release.
///
/// Holding a single slot is deliberate: a serving deployment pins one
/// release per (partition, ε, seed) configuration, and a seed change
/// means a *new* DP release whose predecessor must not be served again.
#[derive(Debug, Default)]
pub struct ReleaseCache {
    slot: Mutex<Option<(u64, Arc<NoisyClusterAverages>)>>,
}

impl ReleaseCache {
    /// An empty cache.
    pub fn new() -> ReleaseCache {
        ReleaseCache::default()
    }

    /// The noisy release for `generation`, building it with `build` on
    /// a miss. Returns the release and whether it was served from
    /// cache.
    pub fn get_or_build(
        &self,
        generation: u64,
        build: impl FnOnce() -> NoisyClusterAverages,
    ) -> (Arc<NoisyClusterAverages>, bool) {
        let mut slot = self.slot.lock().expect("release cache poisoned");
        if let Some((gen, averages)) = slot.as_ref() {
            if *gen == generation {
                return (Arc::clone(averages), true);
            }
        }
        let averages = Arc::new(build());
        *slot = Some((generation, Arc::clone(&averages)));
        (averages, false)
    }

    /// The generation currently cached, if any.
    pub fn generation(&self) -> Option<u64> {
        self.slot.lock().expect("release cache poisoned").as_ref().map(|(g, _)| *g)
    }

    /// Drop the cached release.
    pub fn invalidate(&self) {
        *self.slot.lock().expect("release cache poisoned") = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_separates_every_input() {
        let p1 = partition_fingerprint(&Partition::singletons(4));
        let p2 = partition_fingerprint(&Partition::one_cluster(4));
        assert_ne!(p1, p2);
        let base = release_generation(p1, Epsilon::Finite(0.5), NoiseModel::Laplace, 7);
        assert_eq!(base, release_generation(p1, Epsilon::Finite(0.5), NoiseModel::Laplace, 7));
        for other in [
            release_generation(p2, Epsilon::Finite(0.5), NoiseModel::Laplace, 7),
            release_generation(p1, Epsilon::Finite(0.6), NoiseModel::Laplace, 7),
            release_generation(p1, Epsilon::Infinite, NoiseModel::Laplace, 7),
            release_generation(p1, Epsilon::Finite(0.5), NoiseModel::Geometric, 7),
            release_generation(p1, Epsilon::Finite(0.5), NoiseModel::Laplace, 8),
        ] {
            assert_ne!(base, other);
        }
    }

    #[test]
    fn cache_hits_same_generation_and_rebuilds_on_change() {
        use socialrec_core::private::framework::release_noisy_cluster_averages;
        use socialrec_graph::preference::preference_graph_from_edges;

        let partition = Partition::from_assignment(&[0, 0, 1]);
        let prefs = preference_graph_from_edges(3, 2, &[(0, 0), (1, 1), (2, 0)]).unwrap();
        let build = |seed: u64| {
            release_noisy_cluster_averages(&partition, &prefs, Epsilon::Finite(1.0), seed)
        };
        let cache = ReleaseCache::new();
        assert_eq!(cache.generation(), None);

        let (a, hit) = cache.get_or_build(10, || build(10));
        assert!(!hit);
        let (b, hit) = cache.get_or_build(10, || panic!("must not rebuild on hit"));
        assert!(hit);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.generation(), Some(10));

        let (c, hit) = cache.get_or_build(11, || build(11));
        assert!(!hit);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.generation(), Some(11));

        cache.invalidate();
        assert_eq!(cache.generation(), None);
    }
}
