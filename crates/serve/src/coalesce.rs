//! Queue-based admission that coalesces concurrent single queries.
//!
//! A single-user query pays the whole release lookup + kernel setup for
//! one row of work, so a server under concurrent single-query load
//! leaves most of the item-tiled kernel's throughput on the floor. The
//! [`AdmissionQueue`] fixes that with *flat combining*: every query
//! enqueues itself, and exactly one of the waiting threads — the
//! **leader**, whichever wins the combiner lock — drains the queue and
//! executes all pending queries as one batch through the tiled kernel.
//! Everyone else finds its answer already in its slot when the combiner
//! lock frees up.
//!
//! Under no concurrency the protocol degenerates to the direct path (a
//! one-element batch, zero extra blocking); under load, batch size grows
//! with arrival rate and the kernel amortization does the rest. The
//! executor runs each user's accumulation independently, so coalescing
//! is invisible to the floating-point contract — a coalesced answer is
//! bit-identical to the same query served alone.
//!
//! # Panic containment
//!
//! If the executor panics (e.g. the release builder fails), the leader
//! requeues every pending query it had drained **except its own** and
//! lets the panic propagate. Innocent waiters then retry as leaders;
//! only queries whose own execution keeps failing observe the failure.
//! All locks are poison-recovering, so one panic never bricks the
//! queue.

use socialrec_core::TopN;
use socialrec_graph::UserId;
use socialrec_obs::journal::{self, EventKind};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Where a pending query's answer lands.
#[derive(Debug, Default)]
struct ResponseSlot {
    result: Mutex<Option<TopN>>,
}

impl ResponseSlot {
    fn is_done(&self) -> bool {
        lock_recovering(&self.result).is_some()
    }

    fn take(&self) -> Option<TopN> {
        lock_recovering(&self.result).take()
    }
}

/// One admitted single query, waiting for a leader to execute it.
#[derive(Debug)]
pub struct PendingQuery {
    user: UserId,
    n: usize,
    seed: u64,
    slot: Arc<ResponseSlot>,
}

impl PendingQuery {
    /// The queried user.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// The requested top-N size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The release seed the query was admitted under. The executor must
    /// answer from this seed's generation — never from one that swapped
    /// in later — so no response mixes generations.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Deliver the answer. The waiting thread picks it up when the
    /// leader releases the combiner lock.
    pub fn fulfill(&self, top: TopN) {
        *lock_recovering(&self.slot.result) = Some(top);
    }
}

/// Requeues the batch's unanswered queries (except the leader's own)
/// when the executor finishes — normally or by unwind. A no-op on the
/// full-service path where every slot is filled.
struct RequeueGuard<'a> {
    queue: &'a AdmissionQueue,
    batch: Vec<PendingQuery>,
    own: &'a Arc<ResponseSlot>,
}

impl Drop for RequeueGuard<'_> {
    fn drop(&mut self) {
        let mut orphans: Vec<PendingQuery> = self
            .batch
            .drain(..)
            .filter(|q| !Arc::ptr_eq(&q.slot, self.own) && !q.slot.is_done())
            .collect();
        if !orphans.is_empty() {
            journal::emit(EventKind::CoalesceRequeue, orphans.len() as u64, 0);
            lock_recovering(&self.queue.pending).append(&mut orphans);
        }
    }
}

/// The flat-combining admission queue. See the module docs for the
/// protocol.
#[derive(Debug, Default)]
pub struct AdmissionQueue {
    pending: Mutex<Vec<PendingQuery>>,
    /// Held by the current leader for the duration of one batch.
    combiner: Mutex<()>,
}

impl AdmissionQueue {
    /// An empty queue.
    pub fn new() -> AdmissionQueue {
        AdmissionQueue::default()
    }

    /// Admit one single-user query and block until it is answered.
    ///
    /// `exec` is the batch executor: called with every query drained
    /// from the queue (always ≥ 1, including the caller's own), it
    /// should [`fulfill`](PendingQuery::fulfill) each of them. Any
    /// batch-mate left unanswered — by an early return or a panic — is
    /// requeued for a later leader; leaving the caller's **own** query
    /// unanswered on a normal return is a bug and panics. `exec` runs on
    /// whichever admitted thread becomes leader, so it must be safe to
    /// call from any of them.
    pub fn submit(
        &self,
        user: UserId,
        n: usize,
        seed: u64,
        exec: impl Fn(&[PendingQuery]),
    ) -> TopN {
        let slot = Arc::new(ResponseSlot::default());
        lock_recovering(&self.pending).push(PendingQuery {
            user,
            n,
            seed,
            slot: Arc::clone(&slot),
        });
        let leader = lock_recovering(&self.combiner);
        // A previous leader may have served us while we waited for
        // the combiner lock.
        if let Some(top) = slot.take() {
            return top;
        }
        let batch = std::mem::take(&mut *lock_recovering(&self.pending));
        debug_assert!(!batch.is_empty(), "own unanswered query must be pending");
        let guard = RequeueGuard { queue: self, batch, own: &slot };
        exec(&guard.batch);
        // On the normal full-service path the guard's drop finds
        // every slot filled and requeues nothing; after a partial
        // exec (or, via unwind, a panicking one) it hands the
        // unanswered batch-mates back to the queue. The guard never
        // requeues the caller's own query, so an executor that returns
        // without answering it is a bug, not a retry.
        drop(guard);
        drop(leader);
        match slot.take() {
            Some(top) => top,
            None => panic!("admission executor returned without fulfilling a query"),
        }
    }

    /// Queries currently admitted but not yet drained by a leader.
    pub fn depth(&self) -> usize {
        lock_recovering(&self.pending).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialrec_graph::ItemId;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn answer(q: &PendingQuery) -> TopN {
        // Encode the inputs so tests can check routing.
        TopN { user: q.user(), items: vec![(ItemId(q.n() as u32), q.seed() as f64)] }
    }

    #[test]
    fn single_query_runs_as_its_own_leader() {
        let queue = AdmissionQueue::new();
        let batches = AtomicUsize::new(0);
        let top = queue.submit(UserId(3), 5, 7, |batch| {
            batches.fetch_add(1, Ordering::SeqCst);
            assert_eq!(batch.len(), 1);
            batch[0].fulfill(answer(&batch[0]));
        });
        assert_eq!(top.user, UserId(3));
        assert_eq!(top.items, vec![(ItemId(5), 7.0)]);
        assert_eq!(batches.load(Ordering::SeqCst), 1);
        assert_eq!(queue.depth(), 0);
    }

    #[test]
    fn concurrent_queries_coalesce_and_route_correctly() {
        const THREADS: usize = 16;
        let queue = AdmissionQueue::new();
        let batches = AtomicUsize::new(0);
        let served = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let (queue, batches, served) = (&queue, &batches, &served);
                s.spawn(move || {
                    let top = queue.submit(UserId(t as u32), t + 1, 9, |batch| {
                        batches.fetch_add(1, Ordering::SeqCst);
                        served.fetch_add(batch.len(), Ordering::SeqCst);
                        for q in batch {
                            q.fulfill(answer(q));
                        }
                    });
                    // Each thread gets *its* answer, not a batch-mate's.
                    assert_eq!(top.user, UserId(t as u32));
                    assert_eq!(top.items, vec![(ItemId((t + 1) as u32), 9.0)]);
                });
            }
        });
        assert_eq!(served.load(Ordering::SeqCst), THREADS, "every query served exactly once");
        assert!(batches.load(Ordering::SeqCst) <= THREADS, "leaders never exceed queries");
        assert_eq!(queue.depth(), 0);
    }

    #[test]
    fn panicking_executor_requeues_batch_mates_not_its_own() {
        // A's executor panics on A's own query; B's serves only B's. In
        // every interleaving — A leads with B coalesced in, B leads with
        // A coalesced in, or they never overlap — B must be answered and
        // A must observe its panic. The requeue guard is what makes the
        // coalesced interleavings work: a drained-but-unanswered
        // batch-mate goes back in the queue for its own leadership turn.
        use std::sync::Barrier;
        let queue = AdmissionQueue::new();
        let queue = &queue;
        let barrier = Barrier::new(2);
        let barrier = &barrier;
        std::thread::scope(|s| {
            let b = s.spawn(move || {
                barrier.wait();
                queue.submit(UserId(2), 2, 0, |batch| {
                    for q in batch {
                        if q.user() == UserId(2) {
                            q.fulfill(answer(q));
                        }
                    }
                })
            });
            let a = s.spawn(move || {
                barrier.wait();
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    queue.submit(UserId(1), 1, 0, |batch| {
                        for q in batch {
                            if q.user() == UserId(1) {
                                panic!("executor exploded");
                            }
                            q.fulfill(answer(q));
                        }
                    })
                }))
            });
            let b_top = b.join().unwrap();
            assert_eq!(b_top.user, UserId(2), "batch-mate of a panicking leader is re-served");
            assert_eq!(b_top.items, vec![(ItemId(2), 0.0)]);
            assert!(a.join().unwrap().is_err(), "panic propagates to the leader's own query");
        });
        assert_eq!(queue.depth(), 0);
    }

    #[test]
    fn queue_survives_a_panicked_leader() {
        let queue = AdmissionQueue::new();
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            queue.submit(UserId(0), 1, 0, |_| panic!("first leader dies"));
        }));
        assert!(boom.is_err());
        // The queue (and its poisoned-then-recovered locks) still work.
        let top = queue.submit(UserId(4), 1, 3, |batch| {
            for q in batch {
                q.fulfill(answer(q));
            }
        });
        assert_eq!(top.user, UserId(4));
        assert_eq!(queue.depth(), 0);
    }

    #[test]
    #[should_panic(expected = "without fulfilling")]
    fn executor_forgetting_a_query_is_a_bug() {
        let queue = AdmissionQueue::new();
        queue.submit(UserId(0), 1, 0, |_| {});
    }
}
