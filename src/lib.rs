//! # socialrec — privacy-preserving personalized social recommendations
//!
//! A complete, from-scratch Rust implementation of
//!
//! > Zach Jorgensen and Ting Yu.
//! > *A Privacy-Preserving Framework for Personalized, Social
//! > Recommendations.* EDBT 2014.
//!
//! The paper's setting: a *public* social graph plus a *private*
//! user→item preference graph. A top-N social recommender scores items
//! by `μ_u^i = Σ_{v∈sim(u)} sim(u,v)·w(v,i)` for a structural
//! similarity measure `sim` computed on the social graph alone. The
//! contribution is a framework making any such recommender
//! ε-differentially private *for preference edges*: cluster users by
//! the social graph's community structure (Louvain), release noisy
//! per-(cluster, item) average edge weights with sensitivity `1/|c|`,
//! and rank items by utilities estimated from those averages.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`graph`] — CSR social/preference graphs, generators, I/O, stats;
//! * [`dp`] — Laplace mechanism, ε handling, composition accounting;
//! * [`community`] — Louvain (+ multi-level refinement), modularity,
//!   alternative clustering strategies;
//! * [`similarity`] — Common Neighbors, Graph Distance, Adamic/Adar,
//!   Katz, and the parallel [`similarity::SimilarityMatrix`];
//! * [`linalg`] — dense matrix / QR / randomized SVD (for the LRM
//!   comparator);
//! * [`core`] — the exact recommender, the private framework
//!   (Algorithm 1), the NOU/NOE baselines, the GS/LRM comparators, and
//!   NDCG@N;
//! * [`datasets`] — Table-1-faithful synthetic Last.fm/Flixster-like
//!   datasets and loaders for the real file formats;
//! * [`obs`] — dependency-free observability: hierarchical spans, a
//!   metrics registry, Chrome-trace export, and the privacy-budget
//!   ledger (all inert until [`obs::enable`] is called).
//!
//! ## Quickstart
//!
//! ```
//! use socialrec::prelude::*;
//!
//! // A small synthetic dataset with community structure.
//! let ds = socialrec::datasets::lastfm_like_scaled(0.05, 7);
//!
//! // Public side: similarity + clustering (no privacy cost).
//! let sim = SimilarityMatrix::build(&ds.social, &Measure::CommonNeighbors);
//! let clusters = LouvainStrategy::default().cluster(&ds.social);
//!
//! // Private side: recommend under ε = 1.0 differential privacy.
//! let inputs = RecommenderInputs { prefs: &ds.prefs, sim: &sim };
//! let recommender = ClusterFramework::new(&clusters, Epsilon::Finite(1.0));
//! let lists = recommender.recommend(&inputs, &[UserId(0)], 10, 42);
//! assert_eq!(lists[0].items.len(), 10);
//! ```

#![warn(missing_docs)]

pub use socialrec_community as community;
pub use socialrec_core as core;
pub use socialrec_datasets as datasets;
pub use socialrec_dp as dp;
pub use socialrec_graph as graph;
pub use socialrec_linalg as linalg;
pub use socialrec_obs as obs;
pub use socialrec_similarity as similarity;

/// The most common imports in one place.
pub mod prelude {
    pub use socialrec_community::merge_small_clusters;
    pub use socialrec_community::{
        ClusteringStrategy, KMeansStrategy, Louvain, LouvainStrategy, OneClusterStrategy,
        Partition, RandomStrategy, SingletonStrategy,
    };
    pub use socialrec_core::attack::{estimate_leakage, LeakageEstimate, SybilAttack};
    pub use socialrec_core::cluster_by_similarity;
    pub use socialrec_core::dynamic::{BudgetSchedule, DecayRatio, DynamicRecommender, Snapshot};
    pub use socialrec_core::private::{
        ClusterFramework, GroupAndSmooth, LowRankMechanism, NoiseModel, NoiseOnEdges,
        NoiseOnUtility,
    };
    pub use socialrec_core::HybridRecommender;
    pub use socialrec_core::{
        mean_ndcg, per_user_ndcg, top_n_items, ExactRecommender, RecommenderInputs, TopN,
        TopNRecommender, WeightedClusterFramework, WeightedExactRecommender, WeightedInputs,
    };
    pub use socialrec_datasets::Dataset;
    pub use socialrec_dp::Epsilon;
    pub use socialrec_graph::{
        ItemId, PreferenceGraph, SocialGraph, UserId, WeightedPreferenceGraph,
        WeightedPreferenceGraphBuilder,
    };
    pub use socialrec_similarity::{Measure, Similarity, SimilarityMatrix};
}
