//! End-to-end integration tests across the whole workspace: dataset
//! generation → clustering → similarity → private recommendation →
//! evaluation.

use socialrec::prelude::*;

fn small_dataset() -> Dataset {
    socialrec::datasets::lastfm_like_scaled(0.08, 5)
}

#[test]
fn full_pipeline_produces_valid_lists() {
    let ds = small_dataset();
    let sim = SimilarityMatrix::build(&ds.social, &Measure::CommonNeighbors);
    let clusters = LouvainStrategy { restarts: 3, seed: 1, refine: true }.cluster(&ds.social);
    let inputs = RecommenderInputs { prefs: &ds.prefs, sim: &sim };
    let users: Vec<UserId> = (0..ds.social.num_users() as u32).map(UserId).collect();

    let fw = ClusterFramework::new(&clusters, Epsilon::Finite(0.5));
    let lists = fw.recommend(&inputs, &users, 10, 3);
    assert_eq!(lists.len(), users.len());
    for (k, l) in lists.iter().enumerate() {
        assert_eq!(l.user, users[k]);
        assert_eq!(l.items.len(), 10);
        // Ranked by estimated utility, unique items.
        for w in l.items.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        let mut ids = l.item_ids();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 10, "duplicate item recommended");
        // All items in range.
        assert!(ids.iter().all(|i| i.index() < ds.prefs.num_items()));
    }
}

#[test]
fn mechanism_accuracy_ordering_at_strong_privacy() {
    // The paper's headline: framework >> NOE >= NOU at eps = 0.1.
    let ds = small_dataset();
    let sim = SimilarityMatrix::build(&ds.social, &Measure::CommonNeighbors);
    let clusters = LouvainStrategy { restarts: 3, seed: 1, refine: true }.cluster(&ds.social);
    let inputs = RecommenderInputs { prefs: &ds.prefs, sim: &sim };
    let users: Vec<UserId> = (0..ds.social.num_users() as u32).map(UserId).collect();
    let n = 10;
    let ideal: Vec<Vec<f64>> =
        users.iter().map(|&u| ExactRecommender.utilities(&inputs, u)).collect();

    let eps = Epsilon::Finite(0.1);
    let score = |mech: &dyn TopNRecommender| -> f64 {
        let runs = 3;
        let mut acc = 0.0;
        for seed in 0..runs {
            let lists = mech.recommend(&inputs, &users, n, seed);
            acc += lists
                .iter()
                .enumerate()
                .map(|(k, l)| per_user_ndcg(&ideal[k], &l.item_ids(), n))
                .sum::<f64>()
                / users.len() as f64;
        }
        acc / runs as f64
    };

    let fw = score(&ClusterFramework::new(&clusters, eps));
    let noe = score(&NoiseOnEdges::new(eps));
    let nou = score(&NoiseOnUtility::new(eps));
    assert!(fw > 2.0 * noe, "framework {fw} should dominate NOE {noe}");
    assert!(fw > 2.0 * nou, "framework {fw} should dominate NOU {nou}");
    assert!(fw > 0.3, "framework {fw} unexpectedly weak");
    assert!(nou < 0.2, "NOU {nou} should be near-random at eps=0.1");
}

#[test]
fn all_mechanisms_degenerate_sensibly_at_eps_inf() {
    let ds = small_dataset();
    let sim = SimilarityMatrix::build(&ds.social, &Measure::AdamicAdar);
    let inputs = RecommenderInputs { prefs: &ds.prefs, sim: &sim };
    let users: Vec<UserId> = (0..20).map(UserId).collect();
    let n = 5;
    let exact = ExactRecommender.recommend(&inputs, &users, n, 0);

    // NOU and NOE with eps = inf are exactly the exact recommender.
    assert_eq!(NoiseOnUtility::new(Epsilon::Infinite).recommend(&inputs, &users, n, 1), exact);
    assert_eq!(NoiseOnEdges::new(Epsilon::Infinite).recommend(&inputs, &users, n, 1), exact);

    // The framework with singleton clusters and eps = inf too.
    let singles = SingletonStrategy.cluster(&ds.social);
    let fw = ClusterFramework::new(&singles, Epsilon::Infinite);
    let lists = fw.recommend(&inputs, &users, n, 1);
    for (a, b) in lists.iter().zip(&exact) {
        let ideal = ExactRecommender.utilities(&inputs, a.user);
        let ndcg = per_user_ndcg(&ideal, &a.item_ids(), n);
        assert!(ndcg > 0.999, "user {:?}: {ndcg}", b.user);
    }
}

#[test]
fn seeds_reproduce_and_differ() {
    let ds = small_dataset();
    let sim = SimilarityMatrix::build(&ds.social, &Measure::CommonNeighbors);
    let clusters = LouvainStrategy { restarts: 2, seed: 0, refine: true }.cluster(&ds.social);
    let inputs = RecommenderInputs { prefs: &ds.prefs, sim: &sim };
    let users: Vec<UserId> = (0..30).map(UserId).collect();
    let fw = ClusterFramework::new(&clusters, Epsilon::Finite(0.2));
    let a = fw.recommend(&inputs, &users, 8, 99);
    let b = fw.recommend(&inputs, &users, 8, 99);
    let c = fw.recommend(&inputs, &users, 8, 100);
    assert_eq!(a, b, "same seed must reproduce");
    assert_ne!(a, c, "different seed must differ");
}

#[test]
fn comparators_run_end_to_end() {
    let ds = socialrec::datasets::lastfm_like_scaled(0.05, 9);
    let sim = SimilarityMatrix::build(&ds.social, &Measure::CommonNeighbors);
    let inputs = RecommenderInputs { prefs: &ds.prefs, sim: &sim };
    let users: Vec<UserId> = (0..40).map(UserId).collect();
    let n = 5;
    for mech in [
        Box::new(GroupAndSmooth::new(Epsilon::Finite(1.0)).with_group_sizes(vec![64, 1024]))
            as Box<dyn TopNRecommender>,
        Box::new(LowRankMechanism::new(Epsilon::Finite(1.0), 16)),
    ] {
        let lists = mech.recommend(&inputs, &users, n, 2);
        assert_eq!(lists.len(), users.len(), "{} wrong list count", mech.name());
        assert!(lists.iter().all(|l| l.items.len() == n), "{} wrong list size", mech.name());
    }
}

#[test]
fn dataset_roundtrips_through_files() {
    use socialrec::graph::io::{
        read_preference_graph, read_social_graph, write_preference_graph, write_social_graph,
    };
    let ds = socialrec::datasets::lastfm_like_scaled(0.05, 2);
    let mut sbuf = Vec::new();
    write_social_graph(&ds.social, &mut sbuf).unwrap();
    let social = read_social_graph(std::io::Cursor::new(sbuf), "mem").unwrap();
    assert_eq!(social, ds.social);
    let mut pbuf = Vec::new();
    write_preference_graph(&ds.prefs, &mut pbuf).unwrap();
    let prefs = read_preference_graph(std::io::Cursor::new(pbuf), "mem").unwrap();
    assert_eq!(prefs, ds.prefs);
}

#[test]
fn privacy_accountant_models_the_framework() {
    use socialrec::dp::PrivacyAccountant;
    // The framework releases one noisy average per (cluster, item), all
    // on disjoint edge sets: parallel composition keeps the budget at eps.
    let eps = Epsilon::Finite(0.5);
    let mut acct = PrivacyAccountant::new();
    let clusters = 35;
    let items = 100;
    for _ in 0..clusters * items {
        acct.spend_parallel(eps);
    }
    assert!(acct.within(eps));
    assert!((acct.total_epsilon() - 0.5).abs() < 1e-12);
}
