//! Edge-case and failure-injection tests for the full pipeline:
//! degenerate graphs, empty inputs, extreme parameters.

use socialrec::graph::preference::preference_graph_from_edges;
use socialrec::graph::social::social_graph_from_edges;
use socialrec::prelude::*;

#[test]
fn empty_preference_graph() {
    // Users exist but nobody likes anything: every mechanism must
    // produce (zero/noisy-utility) lists without panicking.
    let social = social_graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
    let prefs = preference_graph_from_edges(5, 4, &[]).unwrap();
    let sim = SimilarityMatrix::build(&social, &Measure::CommonNeighbors);
    let inputs = RecommenderInputs { prefs: &prefs, sim: &sim };
    let partition = LouvainStrategy::default().cluster(&social);
    let users: Vec<UserId> = (0..5).map(UserId).collect();

    for mech in [
        Box::new(ClusterFramework::new(&partition, Epsilon::Finite(1.0)))
            as Box<dyn TopNRecommender>,
        Box::new(NoiseOnUtility::new(Epsilon::Finite(1.0))),
        Box::new(NoiseOnEdges::new(Epsilon::Finite(1.0))),
    ] {
        let lists = mech.recommend(&inputs, &users, 2, 0);
        assert_eq!(lists.len(), 5, "{}", mech.name());
        assert!(lists.iter().all(|l| l.items.len() == 2));
    }
    // NDCG against zero ideals is defined as 1 (no ranking can be wrong).
    let ideal = ExactRecommender.utilities(&inputs, UserId(0));
    assert_eq!(per_user_ndcg(&ideal, &[ItemId(0)], 1), 1.0);
}

#[test]
fn zero_items_dataset() {
    let social = social_graph_from_edges(3, &[(0, 1), (1, 2)]).unwrap();
    let prefs = preference_graph_from_edges(3, 0, &[]).unwrap();
    let sim = SimilarityMatrix::build(&social, &Measure::AdamicAdar);
    let inputs = RecommenderInputs { prefs: &prefs, sim: &sim };
    let partition = LouvainStrategy::default().cluster(&social);
    let fw = ClusterFramework::new(&partition, Epsilon::Finite(0.5));
    let lists = fw.recommend(&inputs, &[UserId(0)], 5, 0);
    assert!(lists[0].items.is_empty());
}

#[test]
fn single_user_universe() {
    let social = social_graph_from_edges(1, &[]).unwrap();
    let prefs = preference_graph_from_edges(1, 3, &[(0, 1)]).unwrap();
    let sim = SimilarityMatrix::build(&social, &Measure::CommonNeighbors);
    let inputs = RecommenderInputs { prefs: &prefs, sim: &sim };
    let partition = Partition::one_cluster(1);
    let fw = ClusterFramework::new(&partition, Epsilon::Finite(0.1));
    let lists = fw.recommend(&inputs, &[UserId(0)], 3, 9);
    assert_eq!(lists[0].items.len(), 3);
    // With nobody similar, all estimates come from the (noisy) own-cluster
    // average times zero similarity: exactly zero.
    assert!(lists[0].items.iter().all(|&(_, u)| u == 0.0));
}

#[test]
fn n_zero_and_n_larger_than_catalog() {
    let social = social_graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
    let prefs = preference_graph_from_edges(4, 2, &[(0, 0), (3, 1)]).unwrap();
    let sim = SimilarityMatrix::build(&social, &Measure::GraphDistance { max_distance: 2 });
    let inputs = RecommenderInputs { prefs: &prefs, sim: &sim };
    let partition = LouvainStrategy::default().cluster(&social);
    let fw = ClusterFramework::new(&partition, Epsilon::Finite(1.0));
    let empty = fw.recommend(&inputs, &[UserId(1)], 0, 0);
    assert!(empty[0].items.is_empty());
    let all = fw.recommend(&inputs, &[UserId(1)], 100, 0);
    assert_eq!(all[0].items.len(), 2, "capped at catalog size");
}

#[test]
fn no_eval_users() {
    let social = social_graph_from_edges(3, &[(0, 1)]).unwrap();
    let prefs = preference_graph_from_edges(3, 2, &[(0, 0)]).unwrap();
    let sim = SimilarityMatrix::build(&social, &Measure::CommonNeighbors);
    let inputs = RecommenderInputs { prefs: &prefs, sim: &sim };
    let partition = LouvainStrategy::default().cluster(&social);
    let fw = ClusterFramework::new(&partition, Epsilon::Finite(1.0));
    assert!(fw.recommend(&inputs, &[], 5, 0).is_empty());
    assert!(ExactRecommender.recommend(&inputs, &[], 5, 0).is_empty());
}

#[test]
fn extreme_epsilons() {
    let ds = socialrec::datasets::lastfm_like_scaled(0.05, 1);
    let sim = SimilarityMatrix::build(&ds.social, &Measure::CommonNeighbors);
    let inputs = RecommenderInputs { prefs: &ds.prefs, sim: &sim };
    let partition = LouvainStrategy { restarts: 2, seed: 0, refine: true }.cluster(&ds.social);
    let users: Vec<UserId> = (0..20).map(UserId).collect();
    // Very weak privacy ~ exact; very strong privacy ~ noise.
    let weak = ClusterFramework::new(&partition, Epsilon::Finite(1000.0));
    let strong = ClusterFramework::new(&partition, Epsilon::Finite(1e-4));
    let ideal: Vec<Vec<f64>> =
        users.iter().map(|&u| ExactRecommender.utilities(&inputs, u)).collect();
    let ndcg = |lists: &[TopN]| -> f64 {
        lists
            .iter()
            .enumerate()
            .map(|(k, l)| per_user_ndcg(&ideal[k], &l.item_ids(), 10))
            .sum::<f64>()
            / users.len() as f64
    };
    let weak_score = ndcg(&weak.recommend(&inputs, &users, 10, 4));
    let strong_score = ndcg(&strong.recommend(&inputs, &users, 10, 4));
    assert!(weak_score > 0.9, "eps=1000 should be near exact, got {weak_score}");
    assert!(strong_score < 0.35, "eps=1e-4 should destroy utility, got {strong_score}");
}

#[test]
fn disconnected_social_graph_full_pipeline() {
    // Three disjoint components; Louvain keeps them separate and the
    // framework must handle per-component clusters fine.
    let social =
        social_graph_from_edges(9, &[(0, 1), (1, 2), (3, 4), (4, 5), (6, 7), (7, 8)]).unwrap();
    let prefs =
        preference_graph_from_edges(9, 3, &[(0, 0), (1, 0), (3, 1), (4, 1), (6, 2), (7, 2)])
            .unwrap();
    let sim = SimilarityMatrix::build(&social, &Measure::CommonNeighbors);
    let inputs = RecommenderInputs { prefs: &prefs, sim: &sim };
    let partition = LouvainStrategy::default().cluster(&social);
    assert!(partition.num_clusters() >= 3);
    let fw = ClusterFramework::new(&partition, Epsilon::Infinite);
    let users: Vec<UserId> = (0..9).map(UserId).collect();
    let lists = fw.recommend(&inputs, &users, 1, 0);
    // User 2 (component 0) should be recommended item 0, never items of
    // other components.
    assert_eq!(lists[2].items[0].0, ItemId(0));
    assert_eq!(lists[5].items[0].0, ItemId(1));
    assert_eq!(lists[8].items[0].0, ItemId(2));
}

#[test]
fn gs_and_lrm_handle_tiny_inputs() {
    let social = social_graph_from_edges(3, &[(0, 1), (1, 2)]).unwrap();
    let prefs = preference_graph_from_edges(3, 2, &[(0, 0), (2, 1)]).unwrap();
    let sim = SimilarityMatrix::build(&social, &Measure::CommonNeighbors);
    let inputs = RecommenderInputs { prefs: &prefs, sim: &sim };
    let users: Vec<UserId> = (0..3).map(UserId).collect();
    let gs = GroupAndSmooth::new(Epsilon::Finite(1.0)).with_group_sizes(vec![2, 100]);
    assert_eq!(gs.recommend(&inputs, &users, 1, 0).len(), 3);
    let lrm = LowRankMechanism::new(Epsilon::Finite(1.0), 2);
    assert_eq!(lrm.recommend(&inputs, &users, 1, 0).len(), 3);
}
