//! Vendored, dependency-free stand-in for `rayon` (the iterator subset
//! this workspace uses), built on `std::thread::scope`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors exactly the parallel-iterator surface it calls:
//!
//! * `slice.par_iter()` → [`ParallelIterator`] with `map`, `map_init`,
//!   `enumerate`, `collect`, `sum`, `reduce`, `for_each`;
//! * `(a..b).into_par_iter()` for integer ranges;
//! * `slice.par_chunks_mut(n)` with `enumerate` / `zip(par_iter)` /
//!   `for_each`, and `slice.par_uneven_chunks_mut(bounds)` for
//!   CSR-style variable-length rows;
//! * `slice.par_sort_unstable_by(cmp)`.
//!
//! # Scheduling
//!
//! Work is scheduled **dynamically**: the input is cut into roughly
//! `workers × CHUNKS_PER_WORKER` contiguous chunks, and worker threads
//! (including the calling thread) claim chunks off a shared atomic
//! counter until the queue drains. A worker that lands on a cheap chunk
//! immediately claims another, so skewed workloads — power-law
//! similarity rows, uneven cluster rows — no longer bottleneck on the
//! unluckiest thread the way static per-thread block splitting did.
//!
//! Ordering is still exact: `collect` writes each item directly into
//! its final slot (indexed by input position), and `sum`/`reduce`
//! combine per-chunk partials in **chunk order**, so results are
//! deterministic for a given thread count, and identical to the
//! sequential evaluation wherever the operation is associative enough
//! (integer adds, `max`, item-wise writes).
//!
//! Nested parallel calls (a parallel region invoked from inside a
//! worker) run inline on the claiming worker instead of spawning a
//! second generation of threads — the outermost region already owns
//! all cores, and inline nesting keeps the thread count bounded by
//! [`num_threads`]. `map_init` creates one state per worker thread,
//! matching rayon's "init per rayon job" contract.
//!
//! The worker count is `std::thread::available_parallelism`, overridable
//! with the `SOCIALREC_THREADS` environment variable (read once, at the
//! first parallel call).

use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::thread;

/// Number of worker threads (including the caller). Computed once and
/// cached; `OnceLock` guarantees a single initialization even when the
/// first parallel calls race from several threads.
fn num_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::env::var("SOCIALREC_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    })
}

/// The number of worker threads parallel regions will use (rayon's
/// `current_num_threads`). Benchmarks record it so speedup numbers can
/// be interpreted against the hardware they ran on.
pub fn current_num_threads() -> usize {
    num_threads()
}

/// Below this many items we run on the calling thread: spawning costs
/// more than it buys.
const SEQUENTIAL_CUTOFF: usize = 2;

/// Target number of chunks per worker. More chunks → finer-grained
/// load balancing for skewed items; fewer chunks → less claim traffic.
/// 8 keeps the worst-case idle tail under ~1/8 of one worker's share
/// while the atomic counter stays far from contended.
const CHUNKS_PER_WORKER: usize = 8;

thread_local! {
    /// Set while this thread is executing as a worker of some parallel
    /// region; nested regions observe it and run inline.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn in_worker() -> bool {
    IN_WORKER.with(|w| w.get())
}

/// Worker count for a region over `items` work items, honoring the
/// sequential cutoff and inline nesting.
fn planned_workers(items: usize) -> usize {
    if items < SEQUENTIAL_CUTOFF || in_worker() {
        1
    } else {
        num_threads().min(items)
    }
}

/// A dynamic queue of contiguous index chunks over `0..len`, claimed
/// via a shared atomic counter.
struct ChunkQueue {
    next: AtomicUsize,
    num_chunks: usize,
    chunk_size: usize,
    len: usize,
}

impl ChunkQueue {
    fn new(len: usize, workers: usize) -> ChunkQueue {
        let target = workers.max(1) * CHUNKS_PER_WORKER;
        let chunk_size = len.div_ceil(target).max(1);
        ChunkQueue {
            next: AtomicUsize::new(0),
            num_chunks: len.div_ceil(chunk_size),
            chunk_size,
            len,
        }
    }

    /// Claim the next unprocessed chunk: `(chunk_index, start, end)`.
    /// Each chunk index is handed out exactly once (the fetch-add is the
    /// sole source of indices), which is what makes the unsafe disjoint
    /// writes in [`gather_init`] and [`drive_chunks`] sound.
    fn claim(&self) -> Option<(usize, usize, usize)> {
        let k = self.next.fetch_add(1, Ordering::Relaxed);
        if k >= self.num_chunks {
            return None;
        }
        let start = k * self.chunk_size;
        let end = ((k + 1) * self.chunk_size).min(self.len);
        Some((k, start, end))
    }
}

/// Run `worker` on `workers` threads (the caller participates) against
/// the shared queue. Every chunk is processed exactly once; a worker
/// panic propagates to the caller when the scope joins.
fn execute<W>(queue: &ChunkQueue, workers: usize, worker: W)
where
    W: Fn(&ChunkQueue) + Sync,
{
    let enter = |queue: &ChunkQueue| {
        IN_WORKER.with(|w| {
            let prev = w.replace(true);
            worker(queue);
            w.set(prev);
        });
    };
    if workers <= 1 || queue.num_chunks <= 1 {
        enter(queue);
        return;
    }
    thread::scope(|scope| {
        for _ in 1..workers {
            scope.spawn(|| enter(queue));
        }
        enter(queue);
    });
}

/// Raw pointer that may cross thread boundaries. Safety rests on the
/// claim protocol: workers only touch indices inside chunks they have
/// claimed, and every chunk is claimed exactly once.
struct SendPtr<T>(*mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than direct field use) so closures capture the
    /// whole `SendPtr` — edition-2021 disjoint capture would otherwise
    /// grab the raw `*mut T` field, which is not `Sync`.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Reinterpret a fully initialized `Vec<MaybeUninit<T>>` as `Vec<T>`.
///
/// # Safety
/// Every element must have been written.
unsafe fn assume_init_vec<T>(v: Vec<MaybeUninit<T>>) -> Vec<T> {
    let mut v = std::mem::ManuallyDrop::new(v);
    // SAFETY: MaybeUninit<T> has the same layout as T, and the caller
    // guarantees all `len` elements are initialized.
    unsafe { Vec::from_raw_parts(v.as_mut_ptr() as *mut T, v.len(), v.capacity()) }
}

/// Produce `produce(&mut state, i)` for every `i < len` (one `state`
/// per worker thread) and return the results in input order: each item
/// is written directly into its final slot.
fn gather_init<R, T, INIT, F>(len: usize, workers: usize, init: INIT, produce: F) -> Vec<R>
where
    R: Send,
    INIT: Fn() -> T + Sync,
    F: Fn(&mut T, usize) -> R + Sync,
{
    let mut out: Vec<MaybeUninit<R>> = Vec::with_capacity(len);
    // SAFETY: MaybeUninit requires no initialization.
    unsafe { out.set_len(len) };
    let ptr = SendPtr(out.as_mut_ptr());
    let queue = ChunkQueue::new(len, workers);
    execute(&queue, workers, |q| {
        let mut state = init();
        while let Some((_, a, b)) = q.claim() {
            for i in a..b {
                // SAFETY: index i belongs to exactly one claimed chunk,
                // so this slot is written exactly once, with no
                // concurrent access.
                unsafe { (*ptr.get().add(i)).write(produce(&mut state, i)) };
            }
        }
    });
    // SAFETY: the queue drained, so every index was claimed and written.
    unsafe { assume_init_vec(out) }
}

/// Compute one partial result per chunk (`per_chunk(start, end)`) and
/// return the partials **in chunk order**, so reductions over them are
/// deterministic regardless of which worker ran which chunk.
fn chunk_partials<S, F>(len: usize, workers: usize, per_chunk: F) -> Vec<S>
where
    S: Send,
    F: Fn(usize, usize) -> S + Sync,
{
    let queue = ChunkQueue::new(len, workers);
    let nc = queue.num_chunks;
    let mut parts: Vec<MaybeUninit<S>> = Vec::with_capacity(nc);
    // SAFETY: MaybeUninit requires no initialization.
    unsafe { parts.set_len(nc) };
    let ptr = SendPtr(parts.as_mut_ptr());
    execute(&queue, workers, |q| {
        while let Some((k, a, b)) = q.claim() {
            // SAFETY: chunk k is claimed exactly once; slot k is written
            // exactly once, with no concurrent access.
            unsafe { (*ptr.get().add(k)).write(per_chunk(a, b)) };
        }
    });
    // SAFETY: the queue drained, so every chunk slot was written.
    unsafe { assume_init_vec(parts) }
}

/// An indexed parallel iterator: pure per-index access drives every
/// adapter except [`MapInit`], which needs per-worker state.
pub trait ParallelIterator: Sized + Sync {
    /// The produced item type.
    type Item: Send;

    /// Exact number of items.
    fn len(&self) -> usize;

    /// Whether the iterator yields nothing.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The item at `index` (pure; may be called from any worker).
    fn at(&self, index: usize) -> Self::Item;

    /// Map each item through `f`.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { inner: self, f }
    }

    /// Pair each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self }
    }

    /// Map with a per-worker scratch state created by `init`.
    fn map_init<INIT, T, F, R>(self, init: INIT, f: F) -> MapInit<Self, INIT, F>
    where
        INIT: Fn() -> T + Sync,
        F: Fn(&mut T, Self::Item) -> R + Sync,
        R: Send,
    {
        MapInit { inner: self, init, f }
    }

    /// Collect all items in input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        let len = self.len();
        gather_init(len, planned_workers(len), || (), |(), i| self.at(i)).into_iter().collect()
    }

    /// Sum of all items (per-chunk partial sums, combined in chunk
    /// order — deterministic for a given thread count).
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        let len = self.len();
        chunk_partials(len, planned_workers(len), |a, b| (a..b).map(|i| self.at(i)).sum::<S>())
            .into_iter()
            .sum()
    }

    /// Reduce all items with `op`, starting each partial from
    /// `identity()` (rayon's `reduce` shape). Per-chunk partials are
    /// combined in chunk order.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        let len = self.len();
        chunk_partials(len, planned_workers(len), |a, b| {
            (a..b).map(|i| self.at(i)).fold(identity(), &op)
        })
        .into_iter()
        .fold(identity(), &op)
    }

    /// Apply `f` to every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let len = self.len();
        let workers = planned_workers(len);
        let queue = ChunkQueue::new(len, workers);
        execute(&queue, workers, |q| {
            while let Some((_, a, b)) = q.claim() {
                for i in a..b {
                    f(self.at(i));
                }
            }
        });
    }
}

/// Parallel iterator over `&[T]` (see [`ParallelSlice::par_iter`]).
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn at(&self, index: usize) -> &'a T {
        &self.slice[index]
    }
}

/// Parallel iterator over an integer range.
pub struct RangeIter<T> {
    start: T,
    count: usize,
}

macro_rules! range_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = RangeIter<$t>;
            fn into_par_iter(self) -> RangeIter<$t> {
                let count = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                RangeIter { start: self.start, count }
            }
        }
        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;
            fn len(&self) -> usize {
                self.count
            }
            fn at(&self, index: usize) -> $t {
                self.start + index as $t
            }
        }
    )*};
}

range_iter!(u32, u64, usize, i32, i64);

/// `map` adapter.
pub struct Map<P, F> {
    inner: P,
    f: F,
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn at(&self, index: usize) -> R {
        (self.f)(self.inner.at(index))
    }
}

/// `enumerate` adapter.
pub struct Enumerate<P> {
    inner: P,
}

impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn at(&self, index: usize) -> (usize, P::Item) {
        (index, self.inner.at(index))
    }
}

/// `map_init` adapter. Unlike the pure adapters it owns its drivers,
/// because the mapper needs `&mut` worker state.
pub struct MapInit<P, INIT, F> {
    inner: P,
    init: INIT,
    f: F,
}

impl<P, INIT, T, F, R> MapInit<P, INIT, F>
where
    P: ParallelIterator,
    INIT: Fn() -> T + Sync,
    F: Fn(&mut T, P::Item) -> R + Sync,
    R: Send,
{
    /// Collect all mapped items in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let len = self.inner.len();
        gather_init(len, planned_workers(len), &self.init, |state, i| {
            (self.f)(state, self.inner.at(i))
        })
        .into_iter()
        .collect()
    }

    /// Apply the mapper for its side effects.
    pub fn for_each(self) {
        let len = self.inner.len();
        let workers = planned_workers(len);
        let queue = ChunkQueue::new(len, workers);
        execute(&queue, workers, |q| {
            let mut state = (self.init)();
            while let Some((_, a, b)) = q.claim() {
                for i in a..b {
                    (self.f)(&mut state, self.inner.at(i));
                }
            }
        });
    }
}

/// `into_par_iter` entry point (ranges, owned collections).
pub trait IntoParallelIterator {
    /// Item produced by the iterator.
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter` on slices (and anything that derefs to a slice).
pub trait ParallelSlice<T: Sync> {
    /// Parallel shared iterator over the elements.
    fn par_iter(&self) -> SliceIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SliceIter<'_, T> {
        SliceIter { slice: self }
    }
}

/// Parallel operations on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks of `size`
    /// (the last chunk may be shorter).
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T>;

    /// Parallel iterator over non-overlapping, variable-length chunks
    /// delimited by the monotone CSR-style `bounds` array: chunk `k`
    /// covers `bounds[k]..bounds[k+1]`. `bounds` must start at 0 and
    /// end at `self.len()`.
    fn par_uneven_chunks_mut<'a>(&'a mut self, bounds: &'a [usize]) -> UnevenChunksMut<'a, T>;

    /// Sort by comparator. Runs sequentially in this vendored build —
    /// callers only rely on the result, not on parallel speedup.
    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ChunksMut { slice: self, size }
    }

    fn par_uneven_chunks_mut<'a>(&'a mut self, bounds: &'a [usize]) -> UnevenChunksMut<'a, T> {
        assert!(!bounds.is_empty(), "bounds must at least contain [0]");
        assert_eq!(bounds[0], 0, "bounds must start at 0");
        assert_eq!(*bounds.last().unwrap(), self.len(), "bounds must end at the slice length");
        debug_assert!(bounds.windows(2).all(|w| w[0] <= w[1]), "bounds must be monotone");
        UnevenChunksMut { slice: self, bounds }
    }

    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync,
    {
        self.sort_unstable_by(cmp);
    }
}

/// Dynamically distribute the uniform chunks of `slice` (chunk length
/// `size`) across workers; each claimed work unit is a *run* of chunks,
/// and `f(chunk_index, chunk)` is called once per chunk.
fn drive_chunks<T, F>(slice: &mut [T], size: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = slice.len();
    let num_chunks = len.div_ceil(size);
    if num_chunks == 0 {
        return;
    }
    let ptr = SendPtr(slice.as_mut_ptr());
    let workers = planned_workers(num_chunks);
    let queue = ChunkQueue::new(num_chunks, workers);
    execute(&queue, workers, |q| {
        while let Some((_, a, b)) = q.claim() {
            for k in a..b {
                let start = k * size;
                let end = ((k + 1) * size).min(len);
                // SAFETY: chunk k is claimed exactly once, and chunks
                // are non-overlapping, so this &mut slice is exclusive.
                let chunk =
                    unsafe { std::slice::from_raw_parts_mut(ptr.get().add(start), end - start) };
                f(k, chunk);
            }
        }
    });
}

/// [`drive_chunks`] for variable-length rows delimited by `bounds`.
fn drive_uneven<T, F>(slice: &mut [T], bounds: &[usize], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let rows = bounds.len() - 1;
    if rows == 0 {
        return;
    }
    let ptr = SendPtr(slice.as_mut_ptr());
    let workers = planned_workers(rows);
    let queue = ChunkQueue::new(rows, workers);
    execute(&queue, workers, |q| {
        while let Some((_, a, b)) = q.claim() {
            for k in a..b {
                let (start, end) = (bounds[k], bounds[k + 1]);
                // SAFETY: row k is claimed exactly once, and monotone
                // bounds make the rows non-overlapping.
                let row =
                    unsafe { std::slice::from_raw_parts_mut(ptr.get().add(start), end - start) };
                f(k, row);
            }
        }
    });
}

/// Parallel iterator over mutable chunks.
pub struct ChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send + Sync> ChunksMut<'a, T> {
    /// Pair each chunk with its chunk index.
    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut { chunks: self }
    }

    /// Zip chunks with an equally long indexed parallel iterator.
    pub fn zip<P: ParallelIterator>(self, other: P) -> ZipChunksMut<'a, T, P> {
        ZipChunksMut { chunks: self, other }
    }

    /// Apply `f` to every chunk.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        drive_chunks(self.slice, self.size, |_, chunk| f(chunk));
    }
}

/// `par_chunks_mut(..).enumerate()`.
pub struct EnumerateChunksMut<'a, T> {
    chunks: ChunksMut<'a, T>,
}

impl<T: Send + Sync> EnumerateChunksMut<'_, T> {
    /// Apply `f` to every `(chunk_index, chunk)` pair.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        drive_chunks(self.chunks.slice, self.chunks.size, |k, chunk| f((k, chunk)));
    }
}

/// `par_chunks_mut(..).zip(par_iter)`.
pub struct ZipChunksMut<'a, T, P> {
    chunks: ChunksMut<'a, T>,
    other: P,
}

impl<T: Send + Sync, P: ParallelIterator> ZipChunksMut<'_, T, P> {
    /// Apply `f` to every `(chunk, other_item)` pair.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((&mut [T], P::Item)) + Sync,
    {
        let other = &self.other;
        assert!(
            self.chunks.slice.len().div_ceil(self.chunks.size) <= other.len(),
            "zip requires the other side to cover every chunk"
        );
        drive_chunks(self.chunks.slice, self.chunks.size, |k, chunk| {
            f((chunk, other.at(k)));
        });
    }
}

/// `par_uneven_chunks_mut(bounds)`: variable-length CSR rows.
pub struct UnevenChunksMut<'a, T> {
    slice: &'a mut [T],
    bounds: &'a [usize],
}

impl<'a, T: Send + Sync> UnevenChunksMut<'a, T> {
    /// Pair each row with its row index.
    pub fn enumerate(self) -> EnumerateUnevenChunksMut<'a, T> {
        EnumerateUnevenChunksMut { chunks: self }
    }

    /// Apply `f` to every row.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        drive_uneven(self.slice, self.bounds, |_, row| f(row));
    }
}

/// `par_uneven_chunks_mut(..).enumerate()`.
pub struct EnumerateUnevenChunksMut<'a, T> {
    chunks: UnevenChunksMut<'a, T>,
}

impl<T: Send + Sync> EnumerateUnevenChunksMut<'_, T> {
    /// Apply `f` to every `(row_index, row)` pair.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        drive_uneven(self.chunks.slice, self.chunks.bounds, |k, row| f((k, row)));
    }
}

pub mod prelude {
    //! Glob-import to bring all parallel-iterator traits into scope.
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{chunk_partials, execute, gather_init, ChunkQueue};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn collect_preserves_order() {
        let v: Vec<u64> = (0..10_000u64).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<u32> = (0..1000u32).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares[31], 961);
        assert_eq!(squares.len(), 1000);
    }

    #[test]
    fn map_init_runs_every_item_once() {
        let v: Vec<usize> = (0..5000).collect();
        let out: Vec<usize> = v
            .par_iter()
            .map_init(Vec::<usize>::new, |scratch, &x| {
                scratch.push(x);
                x + 1
            })
            .collect();
        assert_eq!(out, (1..=5000).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_and_sum() {
        let v = vec![1.0f64; 4096];
        let s: f64 = v.par_iter().enumerate().map(|(i, &x)| x * i as f64).sum();
        let expected: f64 = (0..4096).map(|i| i as f64).sum();
        assert!((s - expected).abs() < 1e-6);
    }

    #[test]
    fn reduce_matches_sequential_fold() {
        let v: Vec<f64> = (0..5000).map(|i| ((i * 2654435761u64 as usize) % 1000) as f64).collect();
        let par_max = v.par_iter().map(|&x| x).reduce(|| 0.0, f64::max);
        let seq_max = v.iter().copied().fold(0.0, f64::max);
        assert_eq!(par_max.to_bits(), seq_max.to_bits());
        let empty: Vec<f64> = Vec::new();
        assert_eq!(empty.par_iter().map(|&x| x).reduce(|| -1.0, f64::max), -1.0);
    }

    #[test]
    fn chunks_mut_enumerate_covers_all() {
        let mut v = vec![0usize; 1003];
        v.par_chunks_mut(10).enumerate().for_each(|(k, chunk)| {
            for x in chunk.iter_mut() {
                *x = k;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i / 10);
        }
    }

    #[test]
    fn chunks_mut_zip_pairs_by_index() {
        let mut v = [0u32; 40];
        let labels: Vec<u32> = (100..110).collect();
        v.par_chunks_mut(4).zip(labels.par_iter()).for_each(|(chunk, &l)| {
            for x in chunk.iter_mut() {
                *x = l;
            }
        });
        assert_eq!(v[0], 100);
        assert_eq!(v[39], 109);
    }

    #[test]
    fn uneven_chunks_cover_csr_rows() {
        // Rows of lengths 0, 3, 1, 0, 5, 2.
        let bounds = [0usize, 0, 3, 4, 4, 9, 11];
        let mut v = vec![usize::MAX; 11];
        v.par_uneven_chunks_mut(&bounds).enumerate().for_each(|(k, row)| {
            assert_eq!(row.len(), bounds[k + 1] - bounds[k]);
            for x in row.iter_mut() {
                *x = k;
            }
        });
        assert_eq!(v, vec![1, 1, 1, 2, 4, 4, 4, 4, 4, 5, 5]);
    }

    #[test]
    fn par_sort_sorts() {
        let mut v: Vec<i64> = (0..1000).map(|i| (i * 7919) % 101).collect();
        v.par_sort_unstable_by(|a, b| a.cmp(b));
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empty_inputs_are_fine() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let mut e: Vec<f64> = Vec::new();
        e.par_chunks_mut(8).for_each(|_| panic!("no chunks expected"));
        e.par_uneven_chunks_mut(&[0]).for_each(|_| panic!("no rows expected"));
    }

    #[test]
    fn nested_parallelism_runs_inline_and_stays_correct() {
        // An outer parallel map whose body itself runs a parallel sum.
        let outer: Vec<u64> = (0..64u64)
            .into_par_iter()
            .map(|i| {
                let inner: Vec<u64> = (0..100u64).into_par_iter().map(|j| i * 100 + j).collect();
                inner.par_iter().map(|&x| x).sum::<u64>()
            })
            .collect();
        for (i, &s) in outer.iter().enumerate() {
            let i = i as u64;
            let expected: u64 = (0..100u64).map(|j| i * 100 + j).sum();
            assert_eq!(s, expected);
        }
    }

    // ---- dynamic-scheduler stress tests (the #[test]-gated guard
    // against scheduling regressions: double claims, missed chunks,
    // order corruption). These drive the internal scheduler with an
    // explicit worker count so they exercise real multi-threaded
    // claiming even on single-core machines. ----

    /// Every chunk must be claimed exactly once, under heavy
    /// multi-worker contention on a queue of many tiny work items.
    #[test]
    fn stress_many_tiny_items_each_claimed_once() {
        const LEN: usize = 100_000;
        const WORKERS: usize = 8;
        let hits: Vec<AtomicUsize> = (0..LEN).map(|_| AtomicUsize::new(0)).collect();
        let queue = ChunkQueue::new(LEN, WORKERS);
        assert!(
            queue.num_chunks >= WORKERS,
            "scheduler must overpartition: {} chunks for {} workers",
            queue.num_chunks,
            WORKERS
        );
        execute(&queue, WORKERS, |q| {
            while let Some((_, a, b)) = q.claim() {
                for h in &hits[a..b] {
                    h.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "item {i} processed wrong number of times");
        }
    }

    /// Few, hugely skewed work items: the chunk queue must hand every
    /// item to exactly one worker and `gather_init` must keep input
    /// order, even when item 0 costs ~1000x the rest (the pattern that
    /// starved static block splitting).
    #[test]
    fn stress_few_huge_skewed_items_keep_order() {
        const WORKERS: usize = 4;
        let items: Vec<u64> = vec![1_000_000, 1_000, 1_000, 1_000, 1_000, 1_000, 1_000];
        let spin = |n: u64| -> u64 {
            let mut acc = 0u64;
            for k in 0..n {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            acc
        };
        let expected: Vec<u64> = items.iter().map(|&n| spin(n)).collect();
        let out = gather_init(items.len(), WORKERS, || (), |(), i| spin(items[i]));
        assert_eq!(out, expected);
    }

    /// Chunk-ordered partials must be deterministic across repeated
    /// multi-worker runs (the contract `sum`/`reduce` rely on).
    #[test]
    fn stress_partials_are_chunk_ordered_and_stable() {
        const LEN: usize = 50_000;
        const WORKERS: usize = 8;
        let v: Vec<f64> = (0..LEN).map(|i| (i as f64).sin()).collect();
        let reference: Vec<f64> = chunk_partials(LEN, WORKERS, |a, b| v[a..b].iter().sum::<f64>());
        for _ in 0..5 {
            let again: Vec<f64> = chunk_partials(LEN, WORKERS, |a, b| v[a..b].iter().sum::<f64>());
            let same = reference.iter().zip(&again).all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "chunk partials changed across runs");
        }
    }

    /// Oversubscribed workers (more threads than chunks) must not
    /// deadlock, double-claim, or drop items.
    #[test]
    fn stress_more_workers_than_chunks() {
        const LEN: usize = 3;
        const WORKERS: usize = 16;
        let out = gather_init(LEN, WORKERS, || (), |(), i| i * 10);
        assert_eq!(out, vec![0, 10, 20]);
    }
}
