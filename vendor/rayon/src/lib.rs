//! Vendored, dependency-free stand-in for `rayon` (the iterator subset
//! this workspace uses), built on `std::thread::scope`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors exactly the parallel-iterator surface it calls:
//!
//! * `slice.par_iter()` → [`ParallelIterator`] with `map`, `map_init`,
//!   `enumerate`, `collect`, `sum`, `for_each`;
//! * `(a..b).into_par_iter()` for integer ranges;
//! * `slice.par_chunks_mut(n)` with `enumerate` / `zip(par_iter)` /
//!   `for_each`;
//! * `slice.par_sort_unstable_by(cmp)`.
//!
//! Work is split into one contiguous index block per worker thread and
//! executed under `std::thread::scope`; results are concatenated in
//! input order, so `collect` preserves ordering exactly like rayon's
//! indexed iterators. Small inputs run inline on the calling thread.
//! `map_init` creates one state per worker block, matching rayon's
//! "init per rayon job" contract.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Number of worker threads (including the caller).
fn num_threads() -> usize {
    static CACHED: AtomicUsize = AtomicUsize::new(0);
    let cached = CACHED.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    CACHED.store(n, Ordering::Relaxed);
    n
}

/// Below this many items we run on the calling thread: spawning costs
/// more than it buys.
const SEQUENTIAL_CUTOFF: usize = 2;

/// Split `len` items into at most `num_threads()` contiguous blocks.
fn blocks(len: usize) -> Vec<(usize, usize)> {
    let workers = num_threads().min(len.max(1));
    let per = len.div_ceil(workers);
    (0..workers).map(|w| (w * per, ((w + 1) * per).min(len))).filter(|(a, b)| a < b).collect()
}

/// Run `f` over each index block, in parallel, returning per-block
/// results in block order.
fn run_blocks<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, usize) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let bs = blocks(len);
    if bs.len() == 1 || len < SEQUENTIAL_CUTOFF {
        return vec![f(0, len)];
    }
    let fr = &f;
    thread::scope(|scope| {
        let handles: Vec<_> = bs.iter().map(|&(a, b)| scope.spawn(move || fr(a, b))).collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    })
}

/// An indexed parallel iterator: pure per-index access drives every
/// adapter except [`MapInit`], which needs per-worker state.
pub trait ParallelIterator: Sized + Sync {
    /// The produced item type.
    type Item: Send;

    /// Exact number of items.
    fn len(&self) -> usize;

    /// Whether the iterator yields nothing.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The item at `index` (pure; may be called from any worker).
    fn at(&self, index: usize) -> Self::Item;

    /// Map each item through `f`.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { inner: self, f }
    }

    /// Pair each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self }
    }

    /// Map with a per-worker scratch state created by `init`.
    fn map_init<INIT, T, F, R>(self, init: INIT, f: F) -> MapInit<Self, INIT, F>
    where
        INIT: Fn() -> T + Sync,
        F: Fn(&mut T, Self::Item) -> R + Sync,
        R: Send,
    {
        MapInit { inner: self, init, f }
    }

    /// Collect all items in input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        let parts = run_blocks(self.len(), |a, b| (a..b).map(|i| self.at(i)).collect::<Vec<_>>());
        parts.into_iter().flatten().collect()
    }

    /// Sum of all items (per-block partial sums, added in block order).
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        run_blocks(self.len(), |a, b| (a..b).map(|i| self.at(i)).sum::<S>()).into_iter().sum()
    }

    /// Apply `f` to every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        run_blocks(self.len(), |a, b| {
            for i in a..b {
                f(self.at(i));
            }
        });
    }
}

/// Parallel iterator over `&[T]` (see [`ParallelSlice::par_iter`]).
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn at(&self, index: usize) -> &'a T {
        &self.slice[index]
    }
}

/// Parallel iterator over an integer range.
pub struct RangeIter<T> {
    start: T,
    count: usize,
}

macro_rules! range_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = RangeIter<$t>;
            fn into_par_iter(self) -> RangeIter<$t> {
                let count = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                RangeIter { start: self.start, count }
            }
        }
        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;
            fn len(&self) -> usize {
                self.count
            }
            fn at(&self, index: usize) -> $t {
                self.start + index as $t
            }
        }
    )*};
}

range_iter!(u32, u64, usize, i32, i64);

/// `map` adapter.
pub struct Map<P, F> {
    inner: P,
    f: F,
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn at(&self, index: usize) -> R {
        (self.f)(self.inner.at(index))
    }
}

/// `enumerate` adapter.
pub struct Enumerate<P> {
    inner: P,
}

impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn at(&self, index: usize) -> (usize, P::Item) {
        (index, self.inner.at(index))
    }
}

/// `map_init` adapter. Unlike the pure adapters it owns its drivers,
/// because the mapper needs `&mut` worker state.
pub struct MapInit<P, INIT, F> {
    inner: P,
    init: INIT,
    f: F,
}

impl<P, INIT, T, F, R> MapInit<P, INIT, F>
where
    P: ParallelIterator,
    INIT: Fn() -> T + Sync,
    F: Fn(&mut T, P::Item) -> R + Sync,
    R: Send,
{
    /// Collect all mapped items in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let parts = run_blocks(self.inner.len(), |a, b| {
            let mut state = (self.init)();
            (a..b).map(|i| (self.f)(&mut state, self.inner.at(i))).collect::<Vec<_>>()
        });
        parts.into_iter().flatten().collect()
    }

    /// Apply the mapper for its side effects.
    pub fn for_each(self) {
        run_blocks(self.inner.len(), |a, b| {
            let mut state = (self.init)();
            for i in a..b {
                (self.f)(&mut state, self.inner.at(i));
            }
        });
    }
}

/// `into_par_iter` entry point (ranges, owned collections).
pub trait IntoParallelIterator {
    /// Item produced by the iterator.
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter` on slices (and anything that derefs to a slice).
pub trait ParallelSlice<T: Sync> {
    /// Parallel shared iterator over the elements.
    fn par_iter(&self) -> SliceIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SliceIter<'_, T> {
        SliceIter { slice: self }
    }
}

/// Parallel operations on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks of `size`
    /// (the last chunk may be shorter).
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T>;

    /// Sort by comparator. Runs sequentially in this vendored build —
    /// callers only rely on the result, not on parallel speedup.
    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ChunksMut { slice: self, size }
    }

    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync,
    {
        self.sort_unstable_by(cmp);
    }
}

/// Distribute the chunks of `slice` (chunk length `size`) across
/// workers; each worker receives a contiguous run of chunks starting at
/// chunk index `first`, and calls `f(chunk_index, chunk)`.
fn drive_chunks<T, F>(slice: &mut [T], size: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let num_chunks = slice.len().div_ceil(size);
    if num_chunks == 0 {
        return;
    }
    let bs = blocks(num_chunks);
    if bs.len() == 1 {
        for (k, chunk) in slice.chunks_mut(size).enumerate() {
            f(k, chunk);
        }
        return;
    }
    // Carve one sub-slice per worker block of chunks, then hand each to
    // a scoped thread.
    let mut rest = slice;
    let mut parts: Vec<(usize, &mut [T])> = Vec::with_capacity(bs.len());
    let mut consumed = 0usize;
    for &(a, b) in &bs {
        let take = ((b - a) * size).min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        parts.push((a, head));
        rest = tail;
        consumed += take;
    }
    debug_assert!(rest.is_empty(), "consumed {consumed} of chunked slice");
    let fr = &f;
    thread::scope(|scope| {
        for (first, part) in parts {
            scope.spawn(move || {
                for (k, chunk) in part.chunks_mut(size).enumerate() {
                    fr(first + k, chunk);
                }
            });
        }
    });
}

/// Parallel iterator over mutable chunks.
pub struct ChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send + Sync> ChunksMut<'a, T> {
    /// Pair each chunk with its chunk index.
    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut { chunks: self }
    }

    /// Zip chunks with an equally long indexed parallel iterator.
    pub fn zip<P: ParallelIterator>(self, other: P) -> ZipChunksMut<'a, T, P> {
        ZipChunksMut { chunks: self, other }
    }

    /// Apply `f` to every chunk.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        drive_chunks(self.slice, self.size, |_, chunk| f(chunk));
    }
}

/// `par_chunks_mut(..).enumerate()`.
pub struct EnumerateChunksMut<'a, T> {
    chunks: ChunksMut<'a, T>,
}

impl<T: Send + Sync> EnumerateChunksMut<'_, T> {
    /// Apply `f` to every `(chunk_index, chunk)` pair.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        drive_chunks(self.chunks.slice, self.chunks.size, |k, chunk| f((k, chunk)));
    }
}

/// `par_chunks_mut(..).zip(par_iter)`.
pub struct ZipChunksMut<'a, T, P> {
    chunks: ChunksMut<'a, T>,
    other: P,
}

impl<T: Send + Sync, P: ParallelIterator> ZipChunksMut<'_, T, P> {
    /// Apply `f` to every `(chunk, other_item)` pair.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((&mut [T], P::Item)) + Sync,
    {
        let other = &self.other;
        assert!(
            self.chunks.slice.len().div_ceil(self.chunks.size) <= other.len(),
            "zip requires the other side to cover every chunk"
        );
        drive_chunks(self.chunks.slice, self.chunks.size, |k, chunk| {
            f((chunk, other.at(k)));
        });
    }
}

pub mod prelude {
    //! Glob-import to bring all parallel-iterator traits into scope.
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn collect_preserves_order() {
        let v: Vec<u64> = (0..10_000u64).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<u32> = (0..1000u32).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares[31], 961);
        assert_eq!(squares.len(), 1000);
    }

    #[test]
    fn map_init_runs_every_item_once() {
        let v: Vec<usize> = (0..5000).collect();
        let out: Vec<usize> = v
            .par_iter()
            .map_init(Vec::<usize>::new, |scratch, &x| {
                scratch.push(x);
                x + 1
            })
            .collect();
        assert_eq!(out, (1..=5000).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_and_sum() {
        let v = vec![1.0f64; 4096];
        let s: f64 = v.par_iter().enumerate().map(|(i, &x)| x * i as f64).sum();
        let expected: f64 = (0..4096).map(|i| i as f64).sum();
        assert!((s - expected).abs() < 1e-6);
    }

    #[test]
    fn chunks_mut_enumerate_covers_all() {
        let mut v = vec![0usize; 1003];
        v.par_chunks_mut(10).enumerate().for_each(|(k, chunk)| {
            for x in chunk.iter_mut() {
                *x = k;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i / 10);
        }
    }

    #[test]
    fn chunks_mut_zip_pairs_by_index() {
        let mut v = [0u32; 40];
        let labels: Vec<u32> = (100..110).collect();
        v.par_chunks_mut(4).zip(labels.par_iter()).for_each(|(chunk, &l)| {
            for x in chunk.iter_mut() {
                *x = l;
            }
        });
        assert_eq!(v[0], 100);
        assert_eq!(v[39], 109);
    }

    #[test]
    fn par_sort_sorts() {
        let mut v: Vec<i64> = (0..1000).map(|i| (i * 7919) % 101).collect();
        v.par_sort_unstable_by(|a, b| a.cmp(b));
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empty_inputs_are_fine() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let mut e: Vec<f64> = Vec::new();
        e.par_chunks_mut(8).for_each(|_| panic!("no chunks expected"));
    }
}
