//! Vendored, dependency-free stand-in for the `rand` crate (0.8 API
//! subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the exact surface it uses: [`SmallRng`](rngs::SmallRng)
//! seeded via [`SeedableRng::seed_from_u64`], the [`Rng`] extension
//! methods `gen`, `gen_range` and `gen_bool`, and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ (the same family the real `SmallRng`
//! uses on 64-bit targets) seeded through SplitMix64, so streams are
//! high quality and fully deterministic per seed. Numeric streams are
//! NOT bit-compatible with upstream `rand`; nothing in this workspace
//! depends on upstream streams, only on per-seed determinism.

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their "natural" range by
/// [`Rng::gen`]: `[0, 1)` for floats, the full domain for integers and
/// `bool`.
pub trait Standard: Sized {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over a bounded interval.
///
/// Mirrors upstream rand's `SampleUniform` so that [`SampleRange`] can
/// be a single blanket impl per range shape — important for type
/// inference in expressions like `slice[rng.gen_range(0..5)]`, where
/// the integer literal's type must unify with `usize` through the
/// range-impl rather than falling back to `i32`.
pub trait SampleUniform: PartialOrd + Sized {
    /// Uniform sample from `[lo, hi)`. Panics if `lo >= hi`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`. Panics if `lo > hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Uniform integer in `[0, span)` without modulo bias (Lemire's
/// multiply-shift; the residual bias of the single pass is `< 2^-64`,
/// far below anything observable in this workspace).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                // Rejection keeps the result strictly below `hi` even
                // when rounding at the top of the interval.
                loop {
                    let unit = <$t as Standard>::sample(rng);
                    let x = lo + (hi - lo) * unit;
                    if x < hi {
                        return x;
                    }
                }
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample over `T`'s natural range (`[0, 1)` for floats).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface; this workspace only uses `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Deterministically construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, high-quality non-cryptographic PRNG
    /// (xoshiro256++), mirroring `rand::rngs::SmallRng` on 64-bit
    /// targets.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let k = rng.gen_range(0..10usize);
            seen[k] = true;
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(2..=7i64);
            assert!((2..=7).contains(&i));
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle of 50 elements should move something");
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }
}
