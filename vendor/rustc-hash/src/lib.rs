//! Vendored, dependency-free stand-in for `rustc-hash`.
//!
//! Implements the classic Fx multiply-xor hash (the Firefox/rustc
//! hasher): fast, non-cryptographic, and a drop-in `BuildHasherDefault`
//! for `HashMap`/`HashSet`. The build environment has no crates.io
//! access, so the workspace vendors the small surface it uses.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hasher: `hash = (hash.rotate_left(5) ^ word) * SEED` per word.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(buf));
            bytes = &bytes[8..];
        }
        if !bytes.is_empty() {
            let mut buf = [0u8; 8];
            buf[..bytes.len()].copy_from_slice(bytes);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` keyed by the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed by the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
        assert!(s.contains(&(1, 2)));
    }

    #[test]
    fn hashing_is_deterministic_and_spreads() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(1), h(2));
        // Strings hash through `write`.
        let hs = |s: &str| {
            let mut hasher = FxHasher::default();
            hasher.write(s.as_bytes());
            hasher.finish()
        };
        assert_ne!(hs("abc"), hs("abd"));
    }
}
