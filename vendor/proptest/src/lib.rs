//! Vendored, dependency-free stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the subset of proptest it uses: the [`proptest!`] macro, the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, [`Just`], [`collection::vec`], and the
//! `prop_assert*` macros.
//!
//! Differences from upstream: failing cases are **not shrunk** — the
//! panic message reports the case number and the per-test RNG is
//! deterministic (seeded from the test's module path and name), so a
//! failure reproduces exactly by re-running the test. The default case
//! count is 64, overridable per block via
//! `#![proptest_config(ProptestConfig::with_cases(n))]` or globally via
//! the `PROPTEST_CASES` environment variable.

/// Per-test deterministic RNG (xoshiro256++ seeded via SplitMix64 from
/// a test-name hash and the case index).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// RNG for one `(test, case)` pair.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut sm = h ^ ((case as u64) << 32 | 0x9E37);
        TestRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    #[inline]
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    #[inline]
    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Resolve the effective case count (env `PROPTEST_CASES` wins).
pub fn effective_cases(cfg: &ProptestConfig) -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(cfg.cases)
}

/// A generator of random values (upstream proptest's `Strategy`, minus
/// shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        MapStrategy { inner: self, f }
    }

    /// Generate a value, then a dependent strategy from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMapStrategy { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// `prop_map` adapter.
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMapStrategy<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                loop {
                    let x = self.start
                        + (self.end - self.start) * rng.unit_f64() as $t;
                    if x < self.end {
                        return x;
                    }
                }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// `Vec` strategy: length uniform in `len`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import for property tests.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over many sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __cases = $crate::effective_cases(&__cfg);
                for __case in 0..__cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Assertion macro (no shrinking: behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion macro (behaves like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion macro (behaves like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let x = crate::Strategy::sample(&(3usize..10), &mut rng);
            assert!((3..10).contains(&x));
            let f = crate::Strategy::sample(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = crate::TestRng::for_case("vecs", 1);
        let s = crate::collection::vec((0u32..5, 0u32..5), 2..7);
        for _ in 0..200 {
            let v = crate::Strategy::sample(&s, &mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&(a, b)| a < 5 && b < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_samples_and_runs(x in 1usize..50, (a, b) in (0u32..10, 0u32..10)) {
            prop_assert!((1..50).contains(&x));
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x + 1, x);
        }

        #[test]
        fn flat_map_dependent_sampling(
            (n, v) in (1usize..9).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(0usize..n.max(1), 1..10))
            }),
        ) {
            prop_assert!(v.iter().all(|&x| x < n));
        }
    }
}
