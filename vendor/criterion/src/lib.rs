//! Vendored, dependency-free stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the subset of the criterion API its benches use:
//! [`Criterion`], [`BenchmarkGroup`] (`benchmark_group` /
//! `bench_function` / `sample_size` / `finish`), [`Bencher::iter`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Statistics are deliberately simple: each benchmark is warmed up
//! briefly, then timed over `sample_size` samples whose iteration
//! counts are auto-scaled so one sample costs roughly
//! `measurement_time / sample_size`; the per-iteration median, min, and
//! max are printed. There is no outlier analysis, plotting, or saved
//! baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark timing state handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `routine`, storing one duration per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let iters = self.iters_per_sample.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.samples.push(start.elapsed() / iters as u32);
    }
}

#[derive(Clone, Copy)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            sample_size: 100,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(3),
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, cfg: Config, mut f: F) {
    // Warm-up pass: also measures per-call cost to scale sample iters.
    let warm_start = Instant::now();
    let mut warm_calls = 0u64;
    while warm_start.elapsed() < cfg.warm_up_time {
        let mut b = Bencher { samples: Vec::new(), iters_per_sample: 1 };
        f(&mut b);
        warm_calls += b.samples.len().max(1) as u64;
    }
    let per_call = warm_start.elapsed().as_nanos() as u64 / warm_calls.max(1);

    let budget_per_sample = cfg.measurement_time.as_nanos() as u64 / cfg.sample_size.max(1) as u64;
    let iters_per_sample = (budget_per_sample / per_call.max(1)).clamp(1, 1_000_000);

    let mut samples = Vec::with_capacity(cfg.sample_size);
    while samples.len() < cfg.sample_size {
        let mut b = Bencher { samples: Vec::new(), iters_per_sample };
        f(&mut b);
        if b.samples.is_empty() {
            // The closure never called `iter`; nothing to measure.
            break;
        }
        samples.extend(b.samples);
    }
    samples.truncate(cfg.sample_size);

    if samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{id:<40} median {:>12}   min {:>12}   max {:>12}   ({} samples x {} iters)",
        format_duration(median),
        format_duration(min),
        format_duration(max),
        samples.len(),
        iters_per_sample,
    );
}

/// Top-level benchmark driver (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup { name: name.to_string(), config: self.config, _parent: self }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, self.config, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 10, "sample size must be at least 10");
        self.config.sample_size = n;
        self
    }

    /// Set the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(&format!("{}/{id}", self.name), self.config, f);
        self
    }

    /// End the group (upstream parity; prints nothing extra).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runner invoked by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running each [`criterion_group!`] bundle.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Config {
        Config {
            sample_size: 10,
            warm_up_time: Duration::from_millis(5),
            measurement_time: Duration::from_millis(20),
        }
    }

    #[test]
    fn bencher_records_samples() {
        run_benchmark("noop", tiny_config(), |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10).measurement_time(Duration::from_millis(20));
        // Direct run_benchmark keeps the test fast; the group method is
        // exercised for API-shape only via an empty closure.
        g.bench_function("empty", |_b| {});
        g.finish();
    }
}
