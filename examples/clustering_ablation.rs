//! Mini-ablation: how much does the *choice of clustering* matter?
//!
//! The framework is ε-DP for any clustering computed from the public
//! social graph (paper Theorem 4) — but accuracy varies wildly. This
//! example pits the paper's Louvain clustering against random-k,
//! k-means on adjacency rows, singletons (≙ Noise-on-Edges) and a
//! single giant cluster, across privacy levels — exposing the
//! resolution/noise trade-off that makes community structure the right
//! *default* rather than a universal optimum.
//!
//! ```text
//! cargo run --release --example clustering_ablation
//! ```

use socialrec::prelude::*;

fn main() {
    let ds = socialrec::datasets::lastfm_like_scaled(0.25, 3);
    let sim = SimilarityMatrix::build(&ds.social, &Measure::CommonNeighbors);
    let inputs = RecommenderInputs { prefs: &ds.prefs, sim: &sim };
    let users: Vec<UserId> = (0..ds.social.num_users() as u32).map(UserId).collect();
    let n = 20;
    let epsilons = [Epsilon::Infinite, Epsilon::Finite(1.0), Epsilon::Finite(0.1)];

    let ideal: Vec<Vec<f64>> =
        users.iter().map(|&u| ExactRecommender.utilities(&inputs, u)).collect();

    let louvain = LouvainStrategy::default().cluster(&ds.social);
    let k = louvain.num_clusters();

    let candidates: Vec<(&str, Partition)> = vec![
        ("louvain (paper)", louvain),
        ("random-k", RandomStrategy { num_clusters: k, seed: 1 }.cluster(&ds.social)),
        ("kmeans-adjacency", KMeansStrategy { k, max_iters: 20, seed: 1 }.cluster(&ds.social)),
        ("singleton (=NOE)", SingletonStrategy.cluster(&ds.social)),
        ("one-cluster", OneClusterStrategy.cluster(&ds.social)),
    ];

    println!("clustering ablation, NDCG@{n}, {} users\n", users.len());
    println!(
        "{:<18}{:>10}{:>12}{:>10}{:>10}{:>10}",
        "strategy", "clusters", "modularity", "eps=inf", "eps=1.0", "eps=0.1"
    );
    for (name, partition) in &candidates {
        let q = socialrec::community::modularity(&ds.social, partition);
        let mut cells = Vec::new();
        for eps in epsilons {
            let fw = ClusterFramework::new(partition, eps);
            let mut acc = 0.0;
            let runs = 3;
            for seed in 0..runs {
                let lists = fw.recommend(&inputs, &users, n, seed);
                acc += lists
                    .iter()
                    .enumerate()
                    .map(|(i, l)| per_user_ndcg(&ideal[i], &l.item_ids(), n))
                    .sum::<f64>()
                    / users.len() as f64;
            }
            cells.push(acc / runs as f64);
        }
        println!(
            "{:<18}{:>10}{:>12.3}{:>10.3}{:>10.3}{:>10.3}",
            name,
            partition.num_clusters(),
            q,
            cells[0],
            cells[1],
            cells[2]
        );
    }

    println!(
        "\nreading the table: at eps >= 1.0 community structure wins clearly —\n\
         random clusters pay approximation error for nothing, singletons pay\n\
         full noise. At very strong privacy the trade-off inverts toward\n\
         coarser clusterings (less noise beats finer resolution): community\n\
         detection is the right default, with cluster-size post-processing\n\
         (merge_small_clusters) as the strong-privacy tuning knob."
    );
}
