//! The Sybil attack of the paper's §2.3, and how the framework blunts
//! it.
//!
//! Attack recipe (Common Neighbors measure):
//!
//! 1. the victim has a neighbor `a` whose *only* friend is the victim;
//! 2. the attacker creates a fake account `b` and friends `a`
//!    (collusion or profile cloning);
//! 3. now `sim(b, ·)` is positive **only** for the victim, so every
//!    recommendation `b` receives is one of the victim's private items.
//!
//! Against the exact recommender the leak is deterministic. Against the
//! ε-DP framework, we empirically estimate how often the attacker's
//! top recommendation equals the victim's secret item, with and without
//! the secret edge present — the ratio of those frequencies is what
//! differential privacy bounds by `e^ε`.
//!
//! ```text
//! cargo run --release --example privacy_attack
//! ```

use socialrec::graph::preference::PreferenceGraphBuilder;
use socialrec::graph::social::SocialGraphBuilder;
use socialrec::prelude::*;

fn main() {
    // Social graph: a small community (users 0-5), the victim (6), the
    // victim's low-degree friend a (7), and the attacker's Sybil b (8).
    let mut sb = SocialGraphBuilder::new(9);
    for (x, y) in [(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 5), (5, 3)] {
        sb.add_edge(UserId(x), UserId(y)).unwrap();
    }
    let victim = UserId(6);
    let friend_a = UserId(7);
    let sybil_b = UserId(8);
    sb.add_edge(victim, UserId(0)).unwrap(); // victim is socially embedded
    sb.add_edge(victim, friend_a).unwrap(); // a's only friend is the victim
    sb.add_edge(sybil_b, friend_a).unwrap(); // the attack edge
    let social = sb.build();

    // Preference graph: 20 items; the community likes items 0-4; the
    // victim's SECRET preference is item 13.
    let secret_item = ItemId(13);
    let mut pb = PreferenceGraphBuilder::new(9, 20);
    for u in 0..6u32 {
        for i in 0..5u32 {
            if (u + i) % 2 == 0 {
                pb.add_edge(UserId(u), ItemId(i)).unwrap();
            }
        }
    }
    pb.add_edge(victim, secret_item).unwrap();
    let prefs_with = pb.build();
    let prefs_without = prefs_with.toggled_edge(victim, secret_item);

    let sim = SimilarityMatrix::build(&social, &Measure::CommonNeighbors);
    println!(
        "attacker similarity set: {:?} (only the victim, as engineered)\n",
        sim.row(sybil_b).0
    );

    // --- The leak against the exact recommender. ---
    let inputs = RecommenderInputs { prefs: &prefs_with, sim: &sim };
    let exact_list = &ExactRecommender.recommend(&inputs, &[sybil_b], 1, 0)[0];
    println!(
        "exact recommender tells the attacker: top item = {} (utility {:.1})",
        exact_list.items[0].0, exact_list.items[0].1
    );
    assert_eq!(exact_list.items[0].0, secret_item);
    println!("=> the victim's secret preference leaks deterministically.\n");

    // --- The same attack against the private framework. ---
    let clusters = LouvainStrategy::default().cluster(&social);
    for eps in [Epsilon::Finite(1.0), Epsilon::Finite(0.1)] {
        let fw = ClusterFramework::new(&clusters, eps);
        let trials = 2000u64;
        let mut hits_with = 0u32;
        let mut hits_without = 0u32;
        for seed in 0..trials {
            let with_inputs = RecommenderInputs { prefs: &prefs_with, sim: &sim };
            let l = &fw.recommend(&with_inputs, &[sybil_b], 1, seed)[0];
            if l.items[0].0 == secret_item {
                hits_with += 1;
            }
            let without_inputs = RecommenderInputs { prefs: &prefs_without, sim: &sim };
            let l = &fw.recommend(&without_inputs, &[sybil_b], 1, seed)[0];
            if l.items[0].0 == secret_item {
                hits_without += 1;
            }
        }
        let p_with = hits_with as f64 / trials as f64;
        let p_without = hits_without as f64 / trials as f64;
        let ratio = if p_without > 0.0 { p_with / p_without } else { f64::INFINITY };
        println!(
            "framework at eps={eps}: Pr[attacker sees secret | edge present] = {p_with:.3}, \
             | edge absent = {p_without:.3}  (ratio {ratio:.2}, DP bound e^eps = {:.2})",
            eps.value().exp()
        );
    }
    println!(
        "\n=> under the framework the attacker's observation is nearly as likely\n\
           whether or not the secret edge exists: the attack yields ~no evidence."
    );
}
