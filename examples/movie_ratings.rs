//! Weighted preferences (the paper's §7 extension): private
//! recommendations from *star ratings* instead of binary signals.
//!
//! Ratings are normalized to `[0, 1]`, which keeps the framework's
//! sensitivity at `1/|c|` — the privacy analysis is unchanged while the
//! utilities become rating-aware.
//!
//! ```text
//! cargo run --release --example movie_ratings
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use socialrec::core::{WeightedClusterFramework, WeightedExactRecommender, WeightedInputs};
use socialrec::graph::weighted::WeightedPreferenceGraphBuilder;
use socialrec::prelude::*;

fn main() {
    // Start from a binary synthetic dataset and overlay ratings: each
    // existing preference edge gets a 0.5-5.0 star rating, biased high
    // (people mostly rate what they like).
    let ds = socialrec::datasets::lastfm_like_scaled(0.12, 13);
    let mut rng = SmallRng::seed_from_u64(99);
    let mut wb = WeightedPreferenceGraphBuilder::new(ds.prefs.num_users(), ds.prefs.num_items());
    for (u, i) in ds.prefs.edges() {
        let stars = [3.0, 3.5, 4.0, 4.5, 5.0][rng.gen_range(0..5)];
        wb.add_rating(u, i, stars, 0.5, 5.0).unwrap();
    }
    let ratings = wb.build();
    println!(
        "{} users rated {} movies ({} ratings, normalized to [0,1])",
        ratings.num_users(),
        ratings.num_items(),
        ratings.num_edges()
    );

    let sim = SimilarityMatrix::build(&ds.social, &Measure::AdamicAdar);
    let clusters = LouvainStrategy::default().cluster(&ds.social);
    let inputs = WeightedInputs { prefs: &ratings, sim: &sim };

    let users: Vec<UserId> = (0..ratings.num_users() as u32).map(UserId).collect();
    let n = 10;
    let exact = WeightedExactRecommender;

    println!("\n{:<10}{:>12}", "epsilon", "NDCG@10");
    for eps in [Epsilon::Infinite, Epsilon::Finite(1.0), Epsilon::Finite(0.1)] {
        let fw = WeightedClusterFramework::new(&clusters, eps);
        let lists = fw.recommend(&inputs, &users, n, 7);
        let mean: f64 = users
            .iter()
            .enumerate()
            .map(|(k, &u)| {
                let ideal = exact.utilities(&inputs, u);
                per_user_ndcg(&ideal, &lists[k].item_ids(), n)
            })
            .sum::<f64>()
            / users.len() as f64;
        println!("{:<10}{:>12.3}", eps.to_string(), mean);
    }

    println!(
        "\nratings flow through the same Laplace release (weights in [0,1] keep\n\
         sensitivity at 1/|c|), so privacy is identical to the unweighted case."
    );
}
