//! Dynamic graphs (the paper's §7 headline future-work item): serving
//! private recommendations over an *evolving* dataset under one total
//! privacy budget.
//!
//! Across snapshots the same preference edge persists, so releases
//! compose sequentially and the total ε must be split over time. This
//! example contrasts the two budget schedules on a drifting dataset:
//! uniform (plan for T releases) vs geometric decay (serve forever,
//! ever coarser).
//!
//! ```text
//! cargo run --release --example dynamic_stream
//! ```

use socialrec::core::{BudgetSchedule, DynamicRecommender, Snapshot};
use socialrec::prelude::*;

fn main() {
    let ds = socialrec::datasets::lastfm_like_scaled(0.15, 21);
    let sim = SimilarityMatrix::build(&ds.social, &Measure::CommonNeighbors);
    let clusters = LouvainStrategy::default().cluster(&ds.social);
    let users: Vec<UserId> = (0..ds.social.num_users() as u32).map(UserId).collect();
    let n = 10;
    let total = Epsilon::Finite(1.0);

    // Simulate preference drift: each snapshot toggles a few edges.
    let snapshots: Vec<PreferenceGraph> = {
        let mut out = vec![ds.prefs.clone()];
        for t in 1..6u32 {
            let prev = out.last().unwrap();
            let mut next = prev.clone();
            for k in 0..5u32 {
                let u = UserId((t * 37 + k * 11) % ds.prefs.num_users() as u32);
                let i = ItemId((t * 13 + k * 7) % ds.prefs.num_items() as u32);
                next = next.toggled_edge(u, i);
            }
            out.push(next);
        }
        out
    };

    for (label, schedule) in [
        ("uniform over 6 releases", BudgetSchedule::Uniform { releases: 6 }),
        (
            "geometric decay (ratio 0.5)",
            BudgetSchedule::decay(0.5).expect("0.5 is a valid decay ratio"),
        ),
    ] {
        println!("\nschedule: {label}, total eps = {total}");
        println!("{:<6}{:>12}{:>14}{:>12}", "t", "eps spent", "total spent", "NDCG@10");
        let mut dynrec = DynamicRecommender::new(total, schedule);
        for (t, prefs) in snapshots.iter().enumerate() {
            let inputs = RecommenderInputs { prefs, sim: &sim };
            let snap = Snapshot { partition: &clusters, inputs };
            let release = match dynrec.release(&snap, &users, n, t as u64) {
                Ok(r) => r,
                Err(e) => {
                    println!("{t:<6}{e}");
                    continue;
                }
            };
            // Score against the snapshot's own exact recommender.
            let ndcg: f64 = users
                .iter()
                .enumerate()
                .map(|(k, &u)| {
                    let ideal = ExactRecommender.utilities(&inputs, u);
                    per_user_ndcg(&ideal, &release.lists[k].item_ids(), n)
                })
                .sum::<f64>()
                / users.len() as f64;
            println!(
                "{t:<6}{:>12.4}{:>14.4}{:>12.3}",
                release.epsilon_spent.value(),
                release.epsilon_total_spent,
                ndcg
            );
        }
    }

    println!(
        "\nthe trade-off the paper anticipates: a fixed horizon gives steady\n\
         quality then stops; decay serves indefinitely but early releases\n\
         are the only sharp ones."
    );
}
