//! A music-service scenario: choosing a similarity measure and a
//! privacy level for a Last.fm-style deployment.
//!
//! Sweeps the four structural similarity measures of the paper (CN, GD,
//! AA, KZ) across privacy levels and reports the accuracy/privacy
//! frontier, mirroring how an engineering team would pick an operating
//! point before launch.
//!
//! ```text
//! cargo run --release --example music_service
//! ```

use socialrec::prelude::*;

fn main() {
    let ds = socialrec::datasets::lastfm_like_scaled(0.25, 11);
    println!(
        "music service snapshot: {} listeners, {} friendships, {} artists\n",
        ds.social.num_users(),
        ds.social.num_edges(),
        ds.prefs.num_items()
    );

    let clusters = LouvainStrategy::default().cluster(&ds.social);
    let users: Vec<UserId> = (0..ds.social.num_users() as u32).map(UserId).collect();
    let n = 20;
    let epsilons = [Epsilon::Infinite, Epsilon::Finite(1.0), Epsilon::Finite(0.1)];

    println!("{:<8}{:>12}{:>12}{:>12}", "measure", "eps=inf", "eps=1.0", "eps=0.1");
    for measure in Measure::paper_suite() {
        let sim = SimilarityMatrix::build(&ds.social, &measure);
        let inputs = RecommenderInputs { prefs: &ds.prefs, sim: &sim };
        let exact = ExactRecommender;
        let ideal: Vec<Vec<f64>> = users.iter().map(|&u| exact.utilities(&inputs, u)).collect();

        let mut cells = Vec::new();
        for eps in epsilons {
            let fw = ClusterFramework::new(&clusters, eps);
            // Average two noise draws for a steadier readout.
            let mut acc = 0.0;
            let runs = 2;
            for seed in 0..runs {
                let lists = fw.recommend(&inputs, &users, n, 100 + seed);
                let mean: f64 = lists
                    .iter()
                    .enumerate()
                    .map(|(k, l)| per_user_ndcg(&ideal[k], &l.item_ids(), n))
                    .sum::<f64>()
                    / users.len() as f64;
                acc += mean;
            }
            cells.push(acc / runs as f64);
        }
        println!("{:<8}{:>12.3}{:>12.3}{:>12.3}", measure.name(), cells[0], cells[1], cells[2]);
    }

    println!(
        "\nreading the table: eps=inf isolates the clustering approximation error;\n\
         eps=1.0 is a lenient privacy budget; eps=0.1 is a strong guarantee.\n\
         The paper's conclusion holds: accuracy stays useful at real privacy levels,\n\
         and the choice of similarity measure matters less than the budget."
    );
}
