//! Quickstart: the full private-recommendation pipeline in ~60 lines.
//!
//! Builds a small synthetic social dataset, clusters the (public)
//! social graph, produces ε-differentially-private recommendations, and
//! scores them against the exact recommender with NDCG@10.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use socialrec::prelude::*;

fn main() {
    // 1. Data: a Last.fm-like synthetic dataset at 10% scale
    //    (~189 users, community-structured friendships, homophilous
    //    item preferences). Swap in `datasets::load_hetrec_lastfm` if
    //    you have the real files.
    let ds = socialrec::datasets::lastfm_like_scaled(0.1, 7);
    println!(
        "dataset: {} users, {} social edges, {} items, {} preference edges",
        ds.social.num_users(),
        ds.social.num_edges(),
        ds.prefs.num_items(),
        ds.prefs.num_edges()
    );

    // 2. Public computations (no privacy cost): structural similarity
    //    and community clustering, both from the social graph alone.
    let sim = SimilarityMatrix::build(&ds.social, &Measure::CommonNeighbors);
    let clusters = LouvainStrategy::default().cluster(&ds.social);
    println!(
        "louvain: {} clusters, largest holds {:.0}% of users",
        clusters.num_clusters(),
        100.0 * clusters.largest_cluster_share()
    );

    // 3. Private recommendation at ε = 0.5.
    let inputs = RecommenderInputs { prefs: &ds.prefs, sim: &sim };
    let epsilon = Epsilon::Finite(0.5);
    let private = ClusterFramework::new(&clusters, epsilon);

    let users: Vec<UserId> = (0..ds.social.num_users() as u32).map(UserId).collect();
    let n = 10;
    let private_lists = private.recommend(&inputs, &users, n, 42);

    // 4. How much accuracy did privacy cost? Compare against the
    //    non-private recommender with NDCG@10.
    let exact = ExactRecommender;
    let mut total_ndcg = 0.0;
    for (k, &u) in users.iter().enumerate() {
        let ideal = exact.utilities(&inputs, u);
        total_ndcg += per_user_ndcg(&ideal, &private_lists[k].item_ids(), n);
    }
    println!(
        "mean NDCG@{n} at eps={epsilon}: {:.3} (1.0 = identical to non-private)",
        total_ndcg / users.len() as f64
    );

    // 5. Peek at one user's list.
    let u = UserId(0);
    println!("\ntop-{n} private recommendations for user {u}:");
    for (rank, (item, score)) in private_lists[0].items.iter().enumerate() {
        println!("  {:>2}. item {:>5}  estimated utility {score:.2}", rank + 1, item.0);
    }
}
